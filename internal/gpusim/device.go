// Package gpusim models the GPU hardware characteristics that determine the
// memory efficiency phenomena studied in the paper.
//
// The paper's experiments run CUDA kernels on an NVIDIA GTX Titan Black
// (Kepler) and a GTX Titan X (Maxwell).  Go has no mature CUDA path, so this
// package substitutes the silicon with an analytic performance model built
// from the same mechanisms the paper credits for its results:
//
//   - memory coalescing: the addresses issued by the 32 threads of a warp are
//     mapped onto aligned memory transactions; scattered or strided addresses
//     fetch more bytes than they use (Coalesce, WarpAccess);
//   - occupancy: registers per thread, shared memory per block and block size
//     bound the number of warps resident on an SM (Occupancy), which in turn
//     bounds how much DRAM latency the SM can hide (latency hiding factor in
//     EstimateTime);
//   - roofline timing: a kernel is limited by whichever of compute throughput
//     and DRAM bandwidth it saturates first, plus a fixed launch overhead per
//     kernel launch.
//
// Every constant in a Device comes from vendor documentation or the paper
// itself; there is no per-experiment fitting.
package gpusim

import "fmt"

// Device describes one GPU.  All throughput values are peak/effective values
// as published; the timing model derates them with kernel-specific
// efficiency factors.
type Device struct {
	Name string

	// Compute.
	SMCount       int     // number of streaming multiprocessors
	PeakGFLOPS    float64 // single-precision peak, GFLOP/s
	CoreClockMHz  float64 // core clock, MHz
	WarpSize      int     // threads per warp (32 on all modelled devices)
	MaxWarpsPerSM int     // resident warp limit per SM

	// Memory system.
	MemBandwidthGBs   float64 // effective DRAM bandwidth, GB/s
	MemLatencyNS      float64 // average DRAM access latency, ns
	GlobalMemBytes    int64   // device memory capacity
	L2CacheBytes      int64   // L2 cache capacity
	CacheLineBytes    int     // L1/L2 cache line size
	TransactionBytes  int     // minimum DRAM transaction granularity
	SharedMemPerSM    int     // shared memory per SM, bytes
	SharedMemPerBlock int     // maximum shared memory per thread block, bytes
	SharedBankBytes   int     // shared memory bank width (4 or 8 bytes)

	// Execution limits.
	RegistersPerSM     int // 32-bit registers per SM
	MaxRegsPerThread   int
	MaxThreadsPerSM    int
	MaxThreadsPerBlock int
	MaxBlocksPerSM     int

	// Kernel launch overhead, microseconds.  Covers driver submission and
	// the tail effect of draining the previous kernel; it is what makes the
	// five-kernel softmax implementation pay for its inter-kernel round
	// trips even before the extra DRAM traffic is counted.
	LaunchOverheadUS float64
}

// TitanBlack returns the model of the NVIDIA GTX Titan Black (Kepler GK110B)
// used for the paper's main experiments: 5121 GFLOPS single precision,
// 235 GB/s effective bandwidth, 6 GB of device memory (Section III.B).
func TitanBlack() *Device {
	return &Device{
		Name:               "GTX Titan Black (Kepler GK110B)",
		SMCount:            15,
		PeakGFLOPS:         5121,
		CoreClockMHz:       889,
		WarpSize:           32,
		MaxWarpsPerSM:      64,
		MemBandwidthGBs:    235,
		MemLatencyNS:       368,
		GlobalMemBytes:     6 << 30,
		L2CacheBytes:       1536 << 10,
		CacheLineBytes:     128,
		TransactionBytes:   32,
		SharedMemPerSM:     48 << 10,
		SharedMemPerBlock:  48 << 10,
		SharedBankBytes:    8, // Kepler supports the 8-byte bank mode used by the vectorised transpose
		RegistersPerSM:     64 << 10,
		MaxRegsPerThread:   255,
		MaxThreadsPerSM:    2048,
		MaxThreadsPerBlock: 1024,
		MaxBlocksPerSM:     16,
		LaunchOverheadUS:   5,
	}
}

// TitanX returns the model of the NVIDIA GTX Titan X (Maxwell GM200) used for
// the paper's cross-device validation (Section VI.C): higher bandwidth,
// larger memory, different layout-selection thresholds.
func TitanX() *Device {
	return &Device{
		Name:               "GTX Titan X (Maxwell GM200)",
		SMCount:            24,
		PeakGFLOPS:         6144,
		CoreClockMHz:       1000,
		WarpSize:           32,
		MaxWarpsPerSM:      64,
		MemBandwidthGBs:    336,
		MemLatencyNS:       350,
		GlobalMemBytes:     12 << 30,
		L2CacheBytes:       3 << 20,
		CacheLineBytes:     128,
		TransactionBytes:   32,
		SharedMemPerSM:     96 << 10,
		SharedMemPerBlock:  48 << 10,
		SharedBankBytes:    4,
		RegistersPerSM:     64 << 10,
		MaxRegsPerThread:   255,
		MaxThreadsPerSM:    2048,
		MaxThreadsPerBlock: 1024,
		MaxBlocksPerSM:     32,
		LaunchOverheadUS:   5,
	}
}

// Validate reports whether the device description is internally consistent.
func (d *Device) Validate() error {
	switch {
	case d.Name == "":
		return fmt.Errorf("gpusim: device has no name")
	case d.SMCount <= 0:
		return fmt.Errorf("gpusim: %s: SMCount must be positive", d.Name)
	case d.PeakGFLOPS <= 0:
		return fmt.Errorf("gpusim: %s: PeakGFLOPS must be positive", d.Name)
	case d.MemBandwidthGBs <= 0:
		return fmt.Errorf("gpusim: %s: MemBandwidthGBs must be positive", d.Name)
	case d.WarpSize <= 0:
		return fmt.Errorf("gpusim: %s: WarpSize must be positive", d.Name)
	case d.TransactionBytes <= 0 || d.CacheLineBytes < d.TransactionBytes:
		return fmt.Errorf("gpusim: %s: inconsistent transaction/cache line sizes", d.Name)
	case d.MaxThreadsPerBlock <= 0 || d.MaxThreadsPerSM < d.MaxThreadsPerBlock:
		return fmt.Errorf("gpusim: %s: inconsistent thread limits", d.Name)
	case d.GlobalMemBytes <= 0:
		return fmt.Errorf("gpusim: %s: GlobalMemBytes must be positive", d.Name)
	case d.MemLatencyNS <= 0:
		return fmt.Errorf("gpusim: %s: MemLatencyNS must be positive", d.Name)
	case d.RegistersPerSM <= 0 || d.SharedMemPerSM <= 0:
		return fmt.Errorf("gpusim: %s: SM resources must be positive", d.Name)
	}
	return nil
}

// PeakBytesPerSec returns the effective DRAM bandwidth in bytes per second.
func (d *Device) PeakBytesPerSec() float64 { return d.MemBandwidthGBs * 1e9 }

// PeakFLOPsPerSec returns the peak arithmetic throughput in FLOP per second.
func (d *Device) PeakFLOPsPerSec() float64 { return d.PeakGFLOPS * 1e9 }

// FitsInMemory reports whether a working set of the given size fits in device
// memory.  The FFT convolution path uses it to reproduce the out-of-memory
// failures the paper reports for CV5 and CV6.
func (d *Device) FitsInMemory(bytes int64) bool { return bytes <= d.GlobalMemBytes }
