package gpusim

import (
	"math"
	"testing"
)

// bigGrid gives a kernel enough blocks to fill the device.
const bigGrid = 1 << 16

func computeBoundStats() KernelStats {
	return KernelStats{
		Name:              "compute-bound",
		GridBlocks:        bigGrid,
		Block:             BlockResources{ThreadsPerBlock: 256, RegsPerThread: 32},
		FLOPs:             1e9,
		ComputeEfficiency: 0.8,
		DRAMReadBytes:     1e6,
		DRAMWriteBytes:    1e6,
		UsefulReadBytes:   1e6,
		UsefulWriteBytes:  1e6,
	}
}

func memoryBoundStats() KernelStats {
	return KernelStats{
		Name:             "memory-bound",
		GridBlocks:       bigGrid,
		Block:            BlockResources{ThreadsPerBlock: 256, RegsPerThread: 32},
		FLOPs:            1e6,
		DRAMReadBytes:    5e8,
		DRAMWriteBytes:   5e8,
		UsefulReadBytes:  5e8,
		UsefulWriteBytes: 5e8,
	}
}

func TestEstimateTimeComputeBound(t *testing.T) {
	d := TitanBlack()
	kt := EstimateTime(d, computeBoundStats())
	if kt.Limiter != "compute" {
		t.Errorf("limiter = %q, want compute", kt.Limiter)
	}
	wantUS := 1e9 / (5121e9 * 0.8) * 1e6
	if math.Abs(kt.ComputeUS-wantUS)/wantUS > 1e-9 {
		t.Errorf("ComputeUS = %v, want %v", kt.ComputeUS, wantUS)
	}
	if kt.TotalUS < kt.ComputeUS {
		t.Error("total must include the compute roof")
	}
}

func TestEstimateTimeMemoryBound(t *testing.T) {
	d := TitanBlack()
	kt := EstimateTime(d, memoryBoundStats())
	if kt.Limiter != "memory" {
		t.Errorf("limiter = %q, want memory", kt.Limiter)
	}
	// 1 GB at 235 GB/s is about 4255 us.
	if kt.MemoryUS < 4000 || kt.MemoryUS > 4600 {
		t.Errorf("MemoryUS = %v, want ~4255", kt.MemoryUS)
	}
	// Achieved useful bandwidth should be close to (but below) peak.
	if kt.AchievedBandwidthGBs > d.MemBandwidthGBs {
		t.Errorf("achieved bandwidth %v exceeds peak %v", kt.AchievedBandwidthGBs, d.MemBandwidthGBs)
	}
	if kt.AchievedBandwidthGBs < 0.9*d.MemBandwidthGBs {
		t.Errorf("achieved bandwidth %v too far below peak for a full-occupancy streaming kernel", kt.AchievedBandwidthGBs)
	}
}

func TestLowOccupancyCapsBandwidth(t *testing.T) {
	d := TitanBlack()
	// Same traffic, but only one block of 128 threads (the baseline softmax
	// parallelisation).  Little's law must cap the achieved bandwidth far
	// below peak.
	s := memoryBoundStats()
	s.GridBlocks = 1
	s.Block = BlockResources{ThreadsPerBlock: 128}
	full := EstimateTime(d, memoryBoundStats())
	starved := EstimateTime(d, s)
	if starved.TotalUS <= full.TotalUS {
		t.Error("a latency-starved kernel must be slower than a full-occupancy one")
	}
	if starved.AchievedBandwidthGBs > 40 {
		t.Errorf("starved kernel bandwidth = %v GB/s, expected well below peak", starved.AchievedBandwidthGBs)
	}
}

func TestLaunchOverheadDominatesTinyKernels(t *testing.T) {
	d := TitanBlack()
	s := KernelStats{
		Name:       "tiny",
		GridBlocks: 1,
		Block:      BlockResources{ThreadsPerBlock: 32},
		FLOPs:      100,
		Launches:   5,
	}
	kt := EstimateTime(d, s)
	if kt.Limiter != "launch" {
		t.Errorf("limiter = %q, want launch", kt.Limiter)
	}
	if kt.LaunchUS != 25 {
		t.Errorf("LaunchUS = %v, want 25 (5 launches x 5us)", kt.LaunchUS)
	}
}

func TestMoreLaunchesCostMore(t *testing.T) {
	d := TitanBlack()
	one := memoryBoundStats()
	five := memoryBoundStats()
	five.Launches = 5
	if EstimateTime(d, five).TotalUS <= EstimateTime(d, one).TotalUS {
		t.Error("five launches must cost more than one")
	}
}

func TestEstimateTimePanicsOnInvalidStats(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on invalid stats")
		}
	}()
	EstimateTime(TitanBlack(), KernelStats{Name: "bad", FLOPs: -1})
}

func TestEstimateSequence(t *testing.T) {
	d := TitanBlack()
	kernels := []KernelStats{computeBoundStats(), memoryBoundStats()}
	total, times := EstimateSequence(d, kernels)
	if len(times) != 2 {
		t.Fatalf("want 2 kernel times, got %d", len(times))
	}
	want := times[0].TotalUS + times[1].TotalUS
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("sequence total %v != sum of parts %v", total, want)
	}
}

func TestStatsAddMergesWork(t *testing.T) {
	a, b := computeBoundStats(), memoryBoundStats()
	sum := a.Add(b)
	if sum.FLOPs != a.FLOPs+b.FLOPs {
		t.Error("FLOPs must add")
	}
	if sum.TotalDRAMBytes() != a.TotalDRAMBytes()+b.TotalDRAMBytes() {
		t.Error("DRAM bytes must add")
	}
	if sum.Launches != 2 {
		t.Errorf("Launches = %d, want 2", sum.Launches)
	}
	if sum.ComputeEfficiency <= 0 || sum.ComputeEfficiency > 1 {
		t.Errorf("combined efficiency %v out of range", sum.ComputeEfficiency)
	}
}

func TestStatsAddZeroFLOPsKeepsOtherEfficiency(t *testing.T) {
	a := KernelStats{Name: "memcpy", DRAMReadBytes: 10}
	b := computeBoundStats()
	if got := a.Add(b).ComputeEfficiency; got != b.ComputeEfficiency {
		t.Errorf("efficiency = %v, want %v", got, b.ComputeEfficiency)
	}
	if got := b.Add(a).ComputeEfficiency; got != b.ComputeEfficiency {
		t.Errorf("efficiency = %v, want %v", got, b.ComputeEfficiency)
	}
}

func TestStatsValidate(t *testing.T) {
	bad := []KernelStats{
		{Name: "neg flops", FLOPs: -1},
		{Name: "neg bytes", DRAMReadBytes: -1},
		{Name: "bad eff", ComputeEfficiency: 2},
		{Name: "neg block", Block: BlockResources{ThreadsPerBlock: -1}},
		{Name: "neg useful", UsefulReadBytes: -5},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", s.Name)
		}
	}
	if err := computeBoundStats().Validate(); err != nil {
		t.Errorf("valid stats rejected: %v", err)
	}
}

func TestKernelTimeString(t *testing.T) {
	kt := EstimateTime(TitanBlack(), memoryBoundStats())
	if kt.String() == "" {
		t.Error("String must not be empty")
	}
}

func TestTitanXIsFasterOnSameKernel(t *testing.T) {
	s := memoryBoundStats()
	tb := EstimateTime(TitanBlack(), s)
	tx := EstimateTime(TitanX(), s)
	if tx.TotalUS >= tb.TotalUS {
		t.Error("the higher-bandwidth Titan X must run a memory-bound kernel faster")
	}
}
