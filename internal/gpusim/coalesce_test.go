package gpusim

import (
	"testing"
	"testing/quick"
)

func TestCoalescedWarpIsOneCacheLine(t *testing.T) {
	// 32 threads reading consecutive float32s: 128 useful bytes.
	w := StridedWarp(0, 1, 4, 32)
	if got := w.Transactions(32); got != 4 {
		t.Errorf("coalesced float warp: %d 32B transactions, want 4", got)
	}
	if got := w.Transactions(128); got != 1 {
		t.Errorf("coalesced float warp: %d 128B transactions, want 1", got)
	}
	if eff := w.Efficiency(32); eff != 1 {
		t.Errorf("coalesced efficiency = %v, want 1", eff)
	}
}

func TestFullyStridedWarpIsUncoalesced(t *testing.T) {
	// Threads separated by 64 floats (256 bytes): each lands in its own
	// 32-byte segment, the pattern of NCHW pooling across feature-map rows.
	w := StridedWarp(0, 64, 4, 32)
	if got := w.Transactions(32); got != 32 {
		t.Errorf("strided warp: %d transactions, want 32", got)
	}
	if eff := w.Efficiency(32); eff != 4.0/32.0 {
		t.Errorf("strided efficiency = %v, want 0.125", eff)
	}
}

func TestModeratelyStridedWarp(t *testing.T) {
	// Stride 2 floats (8 bytes): half the fetched bytes are useful.
	w := StridedWarp(0, 2, 4, 32)
	if got := w.Transactions(32); got != 8 {
		t.Errorf("stride-2 warp: %d transactions, want 8", got)
	}
	if eff := w.Efficiency(32); eff != 0.5 {
		t.Errorf("stride-2 efficiency = %v, want 0.5", eff)
	}
}

func TestVectorizedWarp(t *testing.T) {
	// float2 accesses, consecutive: 32 threads * 8 bytes = 256 bytes.
	w := StridedWarp(0, 1, 8, 32)
	if got := w.Transactions(32); got != 8 {
		t.Errorf("float2 warp: %d transactions, want 8", got)
	}
	if eff := w.Efficiency(32); eff != 1 {
		t.Errorf("float2 efficiency = %v, want 1", eff)
	}
}

func TestUnalignedWarpCostsOneExtraTransaction(t *testing.T) {
	aligned := StridedWarp(0, 1, 4, 32)
	unaligned := StridedWarp(4, 1, 4, 32) // shifted by one float
	if unaligned.Transactions(128) != aligned.Transactions(128)+1 {
		t.Errorf("unaligned 128B transactions = %d, want %d",
			unaligned.Transactions(128), aligned.Transactions(128)+1)
	}
}

func TestBroadcastWarp(t *testing.T) {
	// All threads read the same address (filter broadcast): one transaction.
	addrs := make([]int64, 32)
	w := WarpAccess{Addresses: addrs, Bytes: 4}
	if got := w.Transactions(32); got != 1 {
		t.Errorf("broadcast warp: %d transactions, want 1", got)
	}
	if got := w.UsefulBytes(); got != 4 {
		t.Errorf("broadcast useful bytes = %d, want 4", got)
	}
}

func TestEmptyWarp(t *testing.T) {
	w := WarpAccess{}
	if w.Transactions(32) != 0 {
		t.Error("empty warp should need no transactions")
	}
	if w.UsefulBytes() != 0 {
		t.Error("empty warp has no useful bytes")
	}
	if w.Efficiency(32) != 1 {
		t.Error("empty warp efficiency defined as 1")
	}
}

func TestWarpAccessDefaultsWidth(t *testing.T) {
	w := WarpAccess{Addresses: []int64{0, 4, 8}, Bytes: 0}
	if w.UsefulBytes() != 12 {
		t.Errorf("default width useful bytes = %d, want 12", w.UsefulBytes())
	}
}

// Property: transactions*txBytes always covers the useful bytes, and
// efficiency never exceeds 1.
func TestCoalesceCoversUsefulBytesQuick(t *testing.T) {
	f := func(raw []uint16, widthSel bool) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 32 {
			raw = raw[:32]
		}
		width := 4
		if widthSel {
			width = 8
		}
		addrs := make([]int64, len(raw))
		for i, r := range raw {
			addrs[i] = int64(r) * 4
		}
		w := WarpAccess{Addresses: addrs, Bytes: width}
		moved := int64(w.Transactions(32) * 32)
		if moved < w.UsefulBytes() {
			return false
		}
		return w.Efficiency(32) <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: increasing the stride never decreases the transaction count.
func TestStrideMonotonicityQuick(t *testing.T) {
	f := func(s1, s2 uint8) bool {
		a, b := int(s1%65), int(s2%65)
		if a > b {
			a, b = b, a
		}
		if a == 0 {
			a = 1
		}
		if b == 0 {
			b = 1
		}
		wa := StridedWarp(0, a, 4, 32)
		wb := StridedWarp(0, b, 4, 32)
		return wa.Transactions(32) <= wb.Transactions(32)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAccessPatternTraffic(t *testing.T) {
	d := TitanBlack()
	p := AccessPattern{
		Name:       "coalesced loads",
		Warp:       StridedWarp(0, 1, 4, 32),
		Executions: 100,
	}
	if got := p.TrafficBytes(d); got != 4*32*100 {
		t.Errorf("TrafficBytes = %v, want %v", got, 4*32*100)
	}
	if got := p.UsefulTraffic(); got != 128*100 {
		t.Errorf("UsefulTraffic = %v, want %v", got, 128*100)
	}
}
