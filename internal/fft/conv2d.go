package fft

// 2-D cross-correlation in the frequency domain: the arithmetic core of the
// cuDNN-FFT convolution mode.  Convolutional layers in CNN libraries compute
// cross-correlation (the filter is not flipped); correlation in the space
// domain equals pointwise multiplication by the conjugated filter spectrum in
// the frequency domain, which is what CorrelateValid implements.

// PadReal embeds a rows×cols real image into a zero-padded power-of-two
// complex matrix of size padR×padC.
func PadReal(img []float32, rows, cols, padR, padC int) *Matrix {
	m := NewMatrix(padR, padC)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, complex(float64(img[r*cols+c]), 0))
		}
	}
	return m
}

// Conj conjugates every element of m in place.
func Conj(m *Matrix) {
	for i, v := range m.Data {
		m.Data[i] = complex(real(v), -imag(v))
	}
}

// CorrelateValid computes the "valid" 2-D cross-correlation of a rows×cols
// image with an fh×fw filter using the FFT: the output has size
// (rows-fh+1)×(cols-fw+1).  This is Equation 1 of the paper for a single
// (image, input-channel, output-channel) triple; the convolution kernel model
// sums it over input channels.
func CorrelateValid(img []float32, rows, cols int, filt []float32, fh, fw int) ([]float32, error) {
	padR := NextPow2(rows + fh - 1)
	padC := NextPow2(cols + fw - 1)

	fImg := PadReal(img, rows, cols, padR, padC)
	fFil := PadReal(filt, fh, fw, padR, padC)
	if err := Forward2D(fImg); err != nil {
		return nil, err
	}
	if err := Forward2D(fFil); err != nil {
		return nil, err
	}
	Conj(fFil)
	if err := MulPointwise(fImg, fFil); err != nil {
		return nil, err
	}
	if err := Inverse2D(fImg); err != nil {
		return nil, err
	}

	outH := rows - fh + 1
	outW := cols - fw + 1
	out := make([]float32, outH*outW)
	for r := 0; r < outH; r++ {
		for c := 0; c < outW; c++ {
			out[r*outW+c] = float32(real(fImg.At(r, c)))
		}
	}
	return out, nil
}

// SpectrumCorrelate multiplies a pre-transformed image spectrum by the
// conjugate of a pre-transformed filter spectrum and accumulates into acc.
// It lets the convolution model amortise the image FFT across output
// channels, exactly as the batched cuDNN-FFT implementation does.
func SpectrumCorrelate(acc, imgSpec, filtSpec *Matrix) error {
	tmp := NewMatrix(imgSpec.Rows, imgSpec.Cols)
	copy(tmp.Data, imgSpec.Data)
	conj := NewMatrix(filtSpec.Rows, filtSpec.Cols)
	copy(conj.Data, filtSpec.Data)
	Conj(conj)
	if err := MulPointwise(tmp, conj); err != nil {
		return err
	}
	return AddPointwise(acc, tmp)
}
