package fft

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 17: 32, 28: 32, 224: 256, 226: 256, 255: 256, 257: 512}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 100} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestForwardRejectsNonPow2(t *testing.T) {
	if err := Forward(make([]complex128, 3)); err == nil {
		t.Error("expected error for non-power-of-two length")
	}
	if err := Forward(nil); err != nil {
		t.Errorf("empty input should be a no-op, got %v", err)
	}
}

func TestForwardKnownValues(t *testing.T) {
	// DFT of [1,1,1,1] is [4,0,0,0].
	x := []complex128{1, 1, 1, 1}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	want := []complex128{4, 0, 0, 0}
	for i := range x {
		if cmplxAbs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}

	// DFT of an impulse is flat.
	y := []complex128{1, 0, 0, 0, 0, 0, 0, 0}
	if err := Forward(y); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if cmplxAbs(y[i]-1) > 1e-12 {
			t.Errorf("impulse spectrum[%d] = %v, want 1", i, y[i])
		}
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 8, 64, 256} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			orig[i] = x[i]
		}
		if err := Forward(x); err != nil {
			t.Fatal(err)
		}
		if err := Inverse(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplxAbs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip error at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	// sum |x|^2 == (1/N) sum |X|^2 for the unnormalised forward transform.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		n := NextPow2(len(raw))
		if n > 256 {
			n = 256
		}
		x := make([]complex128, n)
		var timeEnergy float64
		for i := 0; i < n && i < len(raw); i++ {
			v := math.Mod(raw[i], 100)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			x[i] = complex(v, 0)
			timeEnergy += v * v
		}
		if err := Forward(x); err != nil {
			return false
		}
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= float64(n)
		return math.Abs(timeEnergy-freqEnergy) <= 1e-6*(1+timeEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLinearity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 64
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	for i := 0; i < n; i++ {
		a[i] = complex(r.NormFloat64(), 0)
		b[i] = complex(r.NormFloat64(), 0)
		sum[i] = a[i] + b[i]
	}
	if err := Forward(a); err != nil {
		t.Fatal(err)
	}
	if err := Forward(b); err != nil {
		t.Fatal(err)
	}
	if err := Forward(sum); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if cmplxAbs(sum[i]-(a[i]+b[i])) > 1e-9 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestMatrix2DRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := NewMatrix(16, 32)
	orig := make([]complex128, len(m.Data))
	for i := range m.Data {
		m.Data[i] = complex(r.NormFloat64(), 0)
		orig[i] = m.Data[i]
	}
	if err := Forward2D(m); err != nil {
		t.Fatal(err)
	}
	if err := Inverse2D(m); err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if cmplxAbs(m.Data[i]-orig[i]) > 1e-9 {
			t.Fatalf("2D round trip error at %d", i)
		}
	}
}

func TestForward2DRejectsNonPow2(t *testing.T) {
	if err := Forward2D(NewMatrix(3, 4)); err == nil {
		t.Error("expected error for 3-row matrix")
	}
	if err := Inverse2D(NewMatrix(4, 6)); err == nil {
		t.Error("expected error for 6-column matrix")
	}
}

func TestPointwiseSizeMismatch(t *testing.T) {
	if err := MulPointwise(NewMatrix(2, 2), NewMatrix(2, 4)); err == nil {
		t.Error("expected size mismatch error")
	}
	if err := AddPointwise(NewMatrix(2, 2), NewMatrix(4, 2)); err == nil {
		t.Error("expected size mismatch error")
	}
}

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, complex(5, -1))
	if m.At(1, 2) != complex(5, -1) {
		t.Error("At/Set round trip failed")
	}
}

func cmplxAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}
