// Package fft implements the radix-2 complex fast Fourier transform used by
// the FFT-based convolution path (cuDNN-FFT / cuDNN-FFT-Tiling in the paper).
//
// Only the pieces the convolution substrate needs are provided: an in-place
// 1-D transform, a 2-D transform built on it, and next-power-of-two helpers
// for the zero padding that gives the FFT approach its memory overhead
// (Section IV.A, "Data Layouts in FFT-based Implementations").
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// NextPow2 returns the smallest power of two that is >= n (and at least 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Forward computes the in-place forward DFT of x.  len(x) must be a power of
// two.
func Forward(x []complex128) error { return transform(x, false) }

// Inverse computes the in-place inverse DFT of x (including the 1/N scale).
// len(x) must be a power of two.
func Inverse(x []complex128) error {
	if err := transform(x, true); err != nil {
		return err
	}
	n := float64(len(x))
	for i := range x {
		x[i] = complex(real(x[i])/n, imag(x[i])/n)
	}
	return nil
}

// transform is an iterative radix-2 Cooley–Tukey FFT.
func transform(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		angle := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(angle), math.Sin(angle))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return nil
}

// Matrix is a dense 2-D complex matrix stored row-major, the working type of
// the 2-D transform.
type Matrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns element (r,c).
func (m *Matrix) At(r, c int) complex128 { return m.Data[r*m.Cols+c] }

// Set stores v at (r,c).
func (m *Matrix) Set(r, c int, v complex128) { m.Data[r*m.Cols+c] = v }

// Forward2D computes the in-place 2-D forward DFT (rows then columns).
// Both dimensions must be powers of two.
func Forward2D(m *Matrix) error { return transform2D(m, false) }

// Inverse2D computes the in-place 2-D inverse DFT.
func Inverse2D(m *Matrix) error { return transform2D(m, true) }

func transform2D(m *Matrix, inverse bool) error {
	if !IsPow2(m.Rows) || !IsPow2(m.Cols) {
		return fmt.Errorf("fft: matrix %dx%d is not power-of-two sized", m.Rows, m.Cols)
	}
	apply := Forward
	if inverse {
		apply = Inverse
	}
	// Rows.
	for r := 0; r < m.Rows; r++ {
		if err := apply(m.Data[r*m.Cols : (r+1)*m.Cols]); err != nil {
			return err
		}
	}
	// Columns.
	col := make([]complex128, m.Rows)
	for c := 0; c < m.Cols; c++ {
		for r := 0; r < m.Rows; r++ {
			col[r] = m.At(r, c)
		}
		if err := apply(col); err != nil {
			return err
		}
		for r := 0; r < m.Rows; r++ {
			m.Set(r, c, col[r])
		}
	}
	return nil
}

// MulPointwise multiplies a by b element-wise into a.  The matrices must have
// identical dimensions.
func MulPointwise(a, b *Matrix) error {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return fmt.Errorf("fft: pointwise size mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		a.Data[i] *= b.Data[i]
	}
	return nil
}

// AddPointwise adds b into a element-wise.
func AddPointwise(a, b *Matrix) error {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return fmt.Errorf("fft: pointwise size mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
	return nil
}
