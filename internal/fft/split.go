package fft

// Split-storage transforms: the allocation-free counterpart of the Matrix
// API, used by the production FFT convolution kernel (kernels.ConvFFTInto).
//
// The arena memory planner hands kernels flat []float32 scratch, which cannot
// carry complex128 values, so spectra are stored as separate re/im float32
// planes living side by side in the caller's scratch.  Butterfly arithmetic
// still runs in float64 — only the values *between* passes round to float32,
// the storage precision a split-complex GPU implementation would use — and
// every pass walks its data in place (rows with stride 1, columns with stride
// cols), so a 2-D transform needs no column staging buffer and performs no
// heap allocation at all.

import (
	"fmt"
	"math"
	"math/bits"
)

// Forward2DSplit computes the in-place 2-D forward DFT of a rows×cols
// spectrum stored as split re/im planes (row-major, rows and cols powers of
// two).  It allocates nothing.
func Forward2DSplit(re, im []float32, rows, cols int) error {
	return transform2DSplit(re, im, rows, cols, false)
}

// Inverse2DSplit computes the in-place 2-D inverse DFT (including the 1/N
// scale per dimension, matching Inverse2D) over split re/im planes.
func Inverse2DSplit(re, im []float32, rows, cols int) error {
	return transform2DSplit(re, im, rows, cols, true)
}

func transform2DSplit(re, im []float32, rows, cols int, inverse bool) error {
	if !IsPow2(rows) || !IsPow2(cols) {
		return fmt.Errorf("fft: split matrix %dx%d is not power-of-two sized", rows, cols)
	}
	if len(re) < rows*cols || len(im) < rows*cols {
		return fmt.Errorf("fft: split planes hold %d/%d elements, want %d", len(re), len(im), rows*cols)
	}
	for r := 0; r < rows; r++ {
		transformSplit(re, im, r*cols, cols, 1, inverse)
	}
	for c := 0; c < cols; c++ {
		transformSplit(re, im, c, rows, cols, inverse)
	}
	return nil
}

// transformSplit is the iterative radix-2 Cooley–Tukey FFT over one strided
// 1-D slice of a split-complex plane: element i lives at off+i*stride.  The
// length n must be a power of two (validated by the 2-D wrappers).
func transformSplit(re, im []float32, off, n, stride int, inverse bool) {
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			pi, pj := off+i*stride, off+j*stride
			re[pi], re[pj] = re[pj], re[pi]
			im[pi], im[pj] = im[pj], im[pi]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		angle := sign * 2 * math.Pi / float64(size)
		stepR, stepI := math.Cos(angle), math.Sin(angle)
		for start := 0; start < n; start += size {
			wR, wI := 1.0, 0.0
			for k := 0; k < half; k++ {
				pa := off + (start+k)*stride
				pb := pa + half*stride
				aR, aI := float64(re[pa]), float64(im[pa])
				bR := float64(re[pb])*wR - float64(im[pb])*wI
				bI := float64(re[pb])*wI + float64(im[pb])*wR
				re[pa], im[pa] = float32(aR+bR), float32(aI+bI)
				re[pb], im[pb] = float32(aR-bR), float32(aI-bI)
				wR, wI = wR*stepR-wI*stepI, wR*stepI+wI*stepR
			}
		}
	}
	if inverse {
		inv := 1 / float64(n)
		for i := 0; i < n; i++ {
			p := off + i*stride
			re[p] = float32(float64(re[p]) * inv)
			im[p] = float32(float64(im[p]) * inv)
		}
	}
}

// SpectrumCorrelateSplit accumulates img·conj(filt) into acc over split re/im
// planes — the split-storage form of SpectrumCorrelate, with the products
// computed in float64 and the running sum stored in float32.  All six planes
// must have the accumulator's length; the caller guarantees it (every plane
// is one padded spectrum of the same transform size).  It allocates nothing.
func SpectrumCorrelateSplit(accRe, accIm, imgRe, imgIm, filtRe, filtIm []float32) {
	for i := range accRe {
		iR, iI := float64(imgRe[i]), float64(imgIm[i])
		fR, fI := float64(filtRe[i]), float64(filtIm[i])
		// (iR + iI·j)·(fR - fI·j): correlation conjugates the filter spectrum.
		accRe[i] = float32(float64(accRe[i]) + iR*fR + iI*fI)
		accIm[i] = float32(float64(accIm[i]) + iI*fR - iR*fI)
	}
}
