package fft

import (
	"math"
	"math/rand"
	"testing"
)

// naiveCorrelateValid is the O(H*W*Fh*Fw) reference used to validate the FFT
// path.
func naiveCorrelateValid(img []float32, rows, cols int, filt []float32, fh, fw int) []float32 {
	outH, outW := rows-fh+1, cols-fw+1
	out := make([]float32, outH*outW)
	for r := 0; r < outH; r++ {
		for c := 0; c < outW; c++ {
			var acc float64
			for i := 0; i < fh; i++ {
				for j := 0; j < fw; j++ {
					acc += float64(img[(r+i)*cols+(c+j)]) * float64(filt[i*fw+j])
				}
			}
			out[r*outW+c] = float32(acc)
		}
	}
	return out
}

func TestCorrelateValidMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	cases := []struct{ rows, cols, fh, fw int }{
		{8, 8, 3, 3},
		{12, 12, 5, 5},
		{28, 28, 5, 5},
		{7, 9, 3, 2},
		{5, 5, 5, 5}, // output is a single value
		{6, 6, 1, 1}, // 1x1 filter
	}
	for _, c := range cases {
		img := make([]float32, c.rows*c.cols)
		filt := make([]float32, c.fh*c.fw)
		for i := range img {
			img[i] = float32(r.NormFloat64())
		}
		for i := range filt {
			filt[i] = float32(r.NormFloat64())
		}
		got, err := CorrelateValid(img, c.rows, c.cols, filt, c.fh, c.fw)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		want := naiveCorrelateValid(img, c.rows, c.cols, filt, c.fh, c.fw)
		if len(got) != len(want) {
			t.Fatalf("%+v: length %d, want %d", c, len(got), len(want))
		}
		for i := range got {
			if math.Abs(float64(got[i]-want[i])) > 1e-3 {
				t.Fatalf("%+v: output[%d] = %v, want %v", c, i, got[i], want[i])
			}
		}
	}
}

func TestCorrelateValidIdentityFilter(t *testing.T) {
	// A 1x1 unit filter must reproduce the image.
	img := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	got, err := CorrelateValid(img, 3, 3, []float32{1}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range img {
		if math.Abs(float64(got[i]-img[i])) > 1e-5 {
			t.Fatalf("identity filter altered element %d: %v", i, got[i])
		}
	}
}

func TestPadRealPlacesImageInCorner(t *testing.T) {
	img := []float32{1, 2, 3, 4}
	m := PadReal(img, 2, 2, 4, 4)
	if real(m.At(0, 0)) != 1 || real(m.At(1, 1)) != 4 {
		t.Error("image not embedded at the origin")
	}
	if m.At(3, 3) != 0 {
		t.Error("padding must be zero")
	}
}

func TestConj(t *testing.T) {
	m := NewMatrix(1, 2)
	m.Set(0, 0, complex(1, 2))
	m.Set(0, 1, complex(-3, -4))
	Conj(m)
	if m.At(0, 0) != complex(1, -2) || m.At(0, 1) != complex(-3, 4) {
		t.Error("Conj incorrect")
	}
}

func TestSpectrumCorrelateAccumulates(t *testing.T) {
	// Two channels of an impulse image correlated with unit filters should
	// accumulate to 2 at the origin.
	imgSpec := PadReal([]float32{1, 0, 0, 0}, 2, 2, 4, 4)
	filtSpec := PadReal([]float32{1}, 1, 1, 4, 4)
	if err := Forward2D(imgSpec); err != nil {
		t.Fatal(err)
	}
	if err := Forward2D(filtSpec); err != nil {
		t.Fatal(err)
	}
	acc := NewMatrix(4, 4)
	if err := SpectrumCorrelate(acc, imgSpec, filtSpec); err != nil {
		t.Fatal(err)
	}
	if err := SpectrumCorrelate(acc, imgSpec, filtSpec); err != nil {
		t.Fatal(err)
	}
	if err := Inverse2D(acc); err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(acc.At(0, 0))-2) > 1e-9 {
		t.Errorf("accumulated correlation at origin = %v, want 2", real(acc.At(0, 0)))
	}
}

func TestSpectrumCorrelateSizeMismatch(t *testing.T) {
	if err := SpectrumCorrelate(NewMatrix(4, 4), NewMatrix(4, 4), NewMatrix(2, 2)); err == nil {
		t.Error("expected size mismatch error")
	}
}

func BenchmarkCorrelateValid28x28(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	img := make([]float32, 28*28)
	filt := make([]float32, 25)
	for i := range img {
		img[i] = float32(r.NormFloat64())
	}
	for i := range filt {
		filt[i] = float32(r.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CorrelateValid(img, 28, 28, filt, 5, 5); err != nil {
			b.Fatal(err)
		}
	}
}
