package bench

import (
	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/workloads"
)

// TrainingRow is one convolutional layer priced as a complete training step
// (forward + backward-data + backward-filter) in both layouts.  The paper's
// footnote 1 states that the backward pass uses the same data structures and
// operations as the forward pass, so the layout preference must carry over;
// its framework integration is profiled on full forward-backward iterations.
type TrainingRow struct {
	Layer           string
	ForwardCHWNUS   float64
	ForwardNCHWUS   float64
	TrainingCHWNUS  float64
	TrainingNCHWUS  float64
	ForwardPrefCHWN bool
	TrainPrefCHWN   bool
	SamePreference  bool
}

// TrainingStep regenerates the forward-vs-training layout consistency check
// over the Table 1 convolutional layers.
func TrainingStep(d *gpusim.Device) ([]TrainingRow, Table) {
	var rows []TrainingRow
	agree := 0
	for _, c := range workloads.Table1Convs() {
		fwdCHWN := gpusim.EstimateTime(d, kernels.ConvDirectCHWNCost(d, c.Cfg)).TotalUS
		fwdNCHW, _ := gpusim.EstimateSequence(d, kernels.ConvGemmNCHWCost(d, c.Cfg))
		trainCHWN, _ := gpusim.EstimateSequence(d, kernels.ConvTrainingCost(d, c.Cfg, true))
		trainNCHW, _ := gpusim.EstimateSequence(d, kernels.ConvTrainingCost(d, c.Cfg, false))
		row := TrainingRow{
			Layer:           c.Name,
			ForwardCHWNUS:   fwdCHWN,
			ForwardNCHWUS:   fwdNCHW,
			TrainingCHWNUS:  trainCHWN,
			TrainingNCHWUS:  trainNCHW,
			ForwardPrefCHWN: fwdCHWN <= fwdNCHW,
			TrainPrefCHWN:   trainCHWN <= trainNCHW,
		}
		row.SamePreference = row.ForwardPrefCHWN == row.TrainPrefCHWN
		if row.SamePreference {
			agree++
		}
		rows = append(rows, row)
	}
	t := Table{
		Title:   "Training step (forward + backward): layout preference vs the forward-only preference, Table 1 convolutions",
		Headers: []string{"layer", "fwd CHWN us", "fwd NCHW us", "train CHWN us", "train NCHW us", "same preference"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Layer, f1(r.ForwardCHWNUS), f1(r.ForwardNCHWUS), f1(r.TrainingCHWNUS), f1(r.TrainingNCHWUS),
			boolCell(r.SamePreference),
		})
	}
	t.Notes = append(t.Notes, f0(float64(agree))+" of 12 layers keep the forward-pass layout preference in the full training step")
	return rows, t
}

func boolCell(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
