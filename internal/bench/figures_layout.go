package bench

import (
	"fmt"

	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/layout"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

// convLayoutTimes prices the best CHWN and best NCHW implementation of one
// convolutional layer.
func convLayoutTimes(d *gpusim.Device, cfg kernels.ConvConfig) (chwnUS, nchwUS float64) {
	chwnUS = gpusim.EstimateTime(d, kernels.ConvDirectCHWNCost(d, cfg)).TotalUS
	nchwUS, _ = gpusim.EstimateSequence(d, kernels.ConvGemmNCHWCost(d, cfg))
	if seq, err := kernels.ConvFFTCost(d, cfg); err == nil {
		if t, _ := gpusim.EstimateSequence(d, seq); t < nchwUS {
			nchwUS = t
		}
	}
	if seq, err := kernels.ConvFFTTilingCost(d, cfg); err == nil {
		if t, _ := gpusim.EstimateSequence(d, seq); t < nchwUS {
			nchwUS = t
		}
	}
	return chwnUS, nchwUS
}

// Figure1Row is one bar group of Fig. 1: the execution time of the NCHW
// (cuDNN) implementation normalised to the CHWN (cuda-convnet2) one for an
// AlexNet layer.
type Figure1Row struct {
	Layer          string
	CHWNTimeUS     float64
	NCHWTimeUS     float64
	NCHWNormalized float64 // NCHW time / CHWN time (the bar of Fig. 1)
}

// Figure1 regenerates Fig. 1: the motivating comparison of the two layouts on
// AlexNet's convolutional and pooling layers.
func Figure1(d *gpusim.Device) ([]Figure1Row, Table) {
	var rows []Figure1Row
	for _, c := range workloads.AlexNetFig1Convs() {
		chwn, nchw := convLayoutTimes(d, c.Cfg)
		rows = append(rows, Figure1Row{Layer: "CV" + c.Name[2:], CHWNTimeUS: chwn, NCHWTimeUS: nchw, NCHWNormalized: nchw / chwn})
	}
	for _, p := range workloads.AlexNetFig1Pools() {
		chwn := gpusim.EstimateTime(d, kernels.PoolCHWNCost(d, p.Cfg)).TotalUS
		nchw := gpusim.EstimateTime(d, kernels.PoolNCHWCost(d, p.Cfg, kernels.PoolCuDNN)).TotalUS
		rows = append(rows, Figure1Row{Layer: "PL" + p.Name[2:], CHWNTimeUS: chwn, NCHWTimeUS: nchw, NCHWNormalized: nchw / chwn})
	}
	t := Table{
		Title:   "Figure 1: NCHW (cuDNN) execution time normalised to CHWN (cuda-convnet2), AlexNet layers",
		Headers: []string{"layer", "CHWN us", "NCHW us", "NCHW/CHWN"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Layer, f1(r.CHWNTimeUS), f1(r.NCHWTimeUS), f2(r.NCHWNormalized)})
	}
	return rows, t
}

// Figure3Row is one layer of Fig. 3: cuDNN's speedup over cuda-convnet (the
// cuda-convnet bar is 1 by construction).
type Figure3Row struct {
	Layer        string
	CHWNTimeUS   float64
	NCHWTimeUS   float64
	CuDNNSpeedup float64 // >1 means cuDNN (NCHW) wins
	CHWNWins     bool
}

// Figure3 regenerates Fig. 3: the layout comparison over the twelve Table 1
// convolutional layers.
func Figure3(d *gpusim.Device) ([]Figure3Row, Table) {
	var rows []Figure3Row
	for _, c := range workloads.Table1Convs() {
		chwn, nchw := convLayoutTimes(d, c.Cfg)
		rows = append(rows, Figure3Row{
			Layer:        c.Name,
			CHWNTimeUS:   chwn,
			NCHWTimeUS:   nchw,
			CuDNNSpeedup: chwn / nchw,
			CHWNWins:     chwn <= nchw,
		})
	}
	t := Table{
		Title:   "Figure 3: cuDNN (NCHW) speedup over cuda-convnet (CHWN), Table 1 convolutional layers",
		Headers: []string{"layer", "cuda-convnet us", "cuDNN us", "cuDNN speedup", "winner"},
	}
	for _, r := range rows {
		winner := "NCHW"
		if r.CHWNWins {
			winner = "CHWN"
		}
		t.Rows = append(t.Rows, []string{r.Layer, f1(r.CHWNTimeUS), f1(r.NCHWTimeUS), f2(r.CuDNNSpeedup), winner})
	}
	return rows, t
}

// Figure4Row is one point of the Fig. 4 sensitivity sweeps.
type Figure4Row = layout.SweepPoint

// Figure4N regenerates Fig. 4a: throughput of both layouts as the batch size
// varies on the CONV7 shape.
func Figure4N(d *gpusim.Device) ([]Figure4Row, Table) {
	pts := layout.SweepN(d, []int{1, 3, 16, 32, 64, 128, 256, 384, 512})
	t := Table{
		Title:   "Figure 4a: GFLOPS vs batch size N (CONV7 shape, C=256)",
		Headers: []string{"N", "cuda-convnet GFLOPS", "cuDNN GFLOPS", "winner"},
	}
	for _, p := range pts {
		winner := "NCHW"
		if p.CHWNPrefers {
			winner = "CHWN"
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(p.Value), f0(p.CHWNGflops), f0(p.NCHWGflops), winner})
	}
	return pts, t
}

// Figure4C regenerates Fig. 4b: throughput of both layouts as the channel
// count varies on the CONV7 shape.
func Figure4C(d *gpusim.Device) ([]Figure4Row, Table) {
	pts := layout.SweepC(d, []int{16, 32, 64, 128, 256})
	t := Table{
		Title:   "Figure 4b: GFLOPS vs input channels C (CONV7 shape, N=64)",
		Headers: []string{"C", "cuda-convnet GFLOPS", "cuDNN GFLOPS", "winner"},
	}
	for _, p := range pts {
		winner := "NCHW"
		if p.CHWNPrefers {
			winner = "CHWN"
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(p.Value), f0(p.CHWNGflops), f0(p.NCHWGflops), winner})
	}
	return pts, t
}

// Figure5Row is one layer of Fig. 5: the speedups of the cuDNN modes over
// cuda-convnet; OOM marks an execution failure of an FFT mode.
type Figure5Row struct {
	Layer          string
	MMSpeedup      float64
	FFTSpeedup     float64
	FFTTileSpeedup float64
	FFTOOM         bool
	FFTTileOOM     bool
}

// Figure5 regenerates Fig. 5: FFT-based convolution versus matrix
// multiplication and the CHWN direct convolution.
func Figure5(d *gpusim.Device) ([]Figure5Row, Table) {
	var rows []Figure5Row
	for _, c := range workloads.Table1Convs() {
		base := gpusim.EstimateTime(d, kernels.ConvDirectCHWNCost(d, c.Cfg)).TotalUS
		mm, _ := gpusim.EstimateSequence(d, kernels.ConvGemmNCHWCost(d, c.Cfg))
		row := Figure5Row{Layer: c.Name, MMSpeedup: base / mm}
		if seq, err := kernels.ConvFFTCost(d, c.Cfg); err == nil {
			t, _ := gpusim.EstimateSequence(d, seq)
			row.FFTSpeedup = base / t
		} else {
			row.FFTOOM = true
		}
		if seq, err := kernels.ConvFFTTilingCost(d, c.Cfg); err == nil {
			t, _ := gpusim.EstimateSequence(d, seq)
			row.FFTTileSpeedup = base / t
		} else {
			row.FFTTileOOM = true
		}
		rows = append(rows, row)
	}
	t := Table{
		Title:   "Figure 5: speedups over cuda-convnet for the NCHW convolution modes (OOM = exceeds device memory)",
		Headers: []string{"layer", "cuDNN-MM", "cuDNN-FFT", "cuDNN-FFT-T"},
	}
	for _, r := range rows {
		fft := f2(r.FFTSpeedup)
		if r.FFTOOM {
			fft = "OOM"
		}
		fftT := f2(r.FFTTileSpeedup)
		if r.FFTTileOOM {
			fftT = "OOM"
		}
		t.Rows = append(t.Rows, []string{r.Layer, f2(r.MMSpeedup), fft, fftT})
	}
	return rows, t
}

// Figure10Row is one layer of Fig. 10: the speedup of the preferred layout
// over the alternative, without transformation overhead, with the naive
// transformation and with the optimised transformation.
type Figure10Row struct {
	Layer            string
	Preferred        tensor.Layout
	OptSpeedup       float64
	NaiveTransSpeed  float64
	OptTransSpeedup  float64
	TransformShapeGB float64
}

// Figure10 regenerates Fig. 10: how much of the layout benefit survives the
// data-layout transformation overhead.
func Figure10(d *gpusim.Device) ([]Figure10Row, Table) {
	var rows []Figure10Row
	for _, c := range workloads.Table1Convs() {
		chwn, nchw := convLayoutTimes(d, c.Cfg)
		preferredUS, alternativeUS := chwn, nchw
		preferred, alternative := tensor.CHWN, tensor.NCHW
		if nchw < chwn {
			preferredUS, alternativeUS = nchw, chwn
			preferred, alternative = tensor.NCHW, tensor.CHWN
		}
		// The transformation converts the layer's input into the preferred
		// layout and its output back to the alternative layout (the rest of
		// the network stays in the alternative layout, the worst case the
		// paper prices in Fig. 10).
		inShape, outShape := c.Cfg.InputShape(), c.Cfg.OutputShape()
		naive := transformPairUS(d, inShape, outShape, alternative, preferred, kernels.TransformNaive)
		opt := optimizedTransformPairUS(d, inShape, outShape, alternative, preferred)

		rows = append(rows, Figure10Row{
			Layer:            c.Name,
			Preferred:        preferred,
			OptSpeedup:       alternativeUS / preferredUS,
			NaiveTransSpeed:  alternativeUS / (preferredUS + naive),
			OptTransSpeedup:  alternativeUS / (preferredUS + opt),
			TransformShapeGB: float64(inShape.Bytes()+outShape.Bytes()) / 1e9,
		})
	}
	t := Table{
		Title:   "Figure 10: speedup of the preferred layout, alone and including transformation overhead",
		Headers: []string{"layer", "preferred", "Opt", "Opt+naive transform", "Opt+optimized transform"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Layer, r.Preferred.String(), f2(r.OptSpeedup), f2(r.NaiveTransSpeed), f2(r.OptTransSpeedup)})
	}
	return rows, t
}

func transformPairUS(d *gpusim.Device, in, out tensor.Shape, from, to tensor.Layout, m kernels.TransformMethod) float64 {
	total := 0.0
	if s, err := kernels.TransformCost(d, in, from, to, m); err == nil {
		total += gpusim.EstimateTime(d, s).TotalUS
	}
	if s, err := kernels.TransformCost(d, out, to, from, m); err == nil {
		total += gpusim.EstimateTime(d, s).TotalUS
	}
	return total
}

func optimizedTransformPairUS(d *gpusim.Device, in, out tensor.Shape, from, to tensor.Layout) float64 {
	total := 0.0
	if s, _, err := kernels.BestTransform(d, in, from, to); err == nil {
		total += gpusim.EstimateTime(d, s).TotalUS
	}
	if s, _, err := kernels.BestTransform(d, out, to, from); err == nil {
		total += gpusim.EstimateTime(d, s).TotalUS
	}
	return total
}

// Figure11Row is one layer of Fig. 11: the bandwidth achieved by the three
// transformation kernels on the layer's input tensor.
type Figure11Row struct {
	Layer        string
	NaiveGBs     float64
	TiledGBs     float64
	VecGBs       float64
	VecApplic    bool
	NaiveSpeedup float64 // tiled over naive
	VecSpeedup   float64 // vectorised over naive (0 when not applicable)
}

// Figure11 regenerates Fig. 11: naive vs Opt1 (tiled) vs Opt2 (vectorised)
// layout transformation bandwidth.
func Figure11(d *gpusim.Device) ([]Figure11Row, Table) {
	var rows []Figure11Row
	for _, c := range workloads.Table1Convs() {
		shape := c.Cfg.InputShape()
		row := Figure11Row{Layer: c.Name}
		naive, err := kernels.TransformCost(d, shape, tensor.CHWN, tensor.NCHW, kernels.TransformNaive)
		if err != nil {
			continue
		}
		naiveT := gpusim.EstimateTime(d, naive)
		row.NaiveGBs = naiveT.AchievedBandwidthGBs

		tiled, err := kernels.TransformCost(d, shape, tensor.CHWN, tensor.NCHW, kernels.TransformTiled)
		if err != nil {
			continue
		}
		tiledT := gpusim.EstimateTime(d, tiled)
		row.TiledGBs = tiledT.AchievedBandwidthGBs
		row.NaiveSpeedup = naiveT.TotalUS / tiledT.TotalUS

		if kernels.TransformApplicable(kernels.TransformVectorized, shape) {
			vec, err := kernels.TransformCost(d, shape, tensor.CHWN, tensor.NCHW, kernels.TransformVectorized)
			if err == nil {
				vecT := gpusim.EstimateTime(d, vec)
				row.VecGBs = vecT.AchievedBandwidthGBs
				row.VecApplic = true
				row.VecSpeedup = naiveT.TotalUS / vecT.TotalUS
			}
		}
		rows = append(rows, row)
	}
	t := Table{
		Title:   "Figure 11: layout transformation bandwidth (GB/s), CHWN -> NCHW on each layer's input",
		Headers: []string{"layer", "naive", "Opt1 (tiled)", "Opt2 (vectorized)", "Opt1 speedup", "Opt2 speedup"},
		Notes:   []string{"Opt2 requires N >= 64 (float2 vectorisation packs image pairs)"},
	}
	for _, r := range rows {
		vec, vecSp := "n/a", "n/a"
		if r.VecApplic {
			vec, vecSp = f1(r.VecGBs), f2(r.VecSpeedup)
		}
		t.Rows = append(t.Rows, []string{r.Layer, f1(r.NaiveGBs), f1(r.TiledGBs), vec, f2(r.NaiveSpeedup), vecSp})
	}
	return rows, t
}

// HeuristicRow is one layer of the heuristic-accuracy check (Section VI.A).
type HeuristicRow struct {
	Layer     string
	Heuristic tensor.Layout
	Oracle    tensor.Layout
	Agree     bool
}

// HeuristicAccuracy compares the (Ct, Nt) heuristic against the cost-model
// oracle for every Table 1 convolutional layer.
func HeuristicAccuracy(d *gpusim.Device, th layout.Thresholds) ([]HeuristicRow, Table) {
	var rows []HeuristicRow
	agree := 0
	for _, c := range workloads.Table1Convs() {
		h := layout.PreferredConvLayout(c.Cfg, th)
		o, _, _ := layout.MeasuredConvWinner(d, c.Cfg)
		r := HeuristicRow{Layer: c.Name, Heuristic: h, Oracle: o, Agree: h == o}
		if r.Agree {
			agree++
		}
		rows = append(rows, r)
	}
	t := Table{
		Title:   fmt.Sprintf("Heuristic accuracy with thresholds %v: %d/%d layers classified like the measured winner", th, agree, len(rows)),
		Headers: []string{"layer", "heuristic", "oracle", "agree"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Layer, r.Heuristic.String(), r.Oracle.String(), fmt.Sprint(r.Agree)})
	}
	return rows, t
}
