package bench

import (
	"strings"
	"testing"

	"memcnn/internal/gpusim"
	"memcnn/internal/layout"
	"memcnn/internal/tensor"
)

func device() *gpusim.Device        { return gpusim.TitanBlack() }
func thresholds() layout.Thresholds { return layout.TitanBlackThresholds() }

func TestTableFormatting(t *testing.T) {
	tbl := Table{
		Title:   "demo",
		Headers: []string{"a", "longer-column"},
		Rows:    [][]string{{"1", "2"}, {"333333", "4"}},
		Notes:   []string{"a note"},
	}
	out := tbl.String()
	for _, want := range []string{"demo", "longer-column", "333333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1ShapeMatchesPaper(t *testing.T) {
	rows, tbl := Figure1(device())
	if len(rows) != 8 {
		t.Fatalf("Fig. 1 compares 5 conv + 3 pool layers, got %d rows", len(rows))
	}
	if tbl.String() == "" {
		t.Error("table must render")
	}
	// The first AlexNet convolution (C=3) and all pooling layers prefer
	// CHWN, i.e. the normalised NCHW bar is above 1.
	if rows[0].NCHWNormalized <= 1 {
		t.Errorf("CV1: NCHW/CHWN = %.2f, want > 1", rows[0].NCHWNormalized)
	}
	for _, r := range rows[5:] {
		if r.NCHWNormalized <= 1 {
			t.Errorf("%s: pooling should prefer CHWN (ratio %.2f)", r.Layer, r.NCHWNormalized)
		}
	}
	// At least one of the deeper convolutions prefers NCHW, showing that a
	// single layout cannot win everywhere.
	anyNCHW := false
	for _, r := range rows[1:5] {
		if r.NCHWNormalized < 1 {
			anyNCHW = true
		}
	}
	if !anyNCHW {
		t.Error("at least one AlexNet convolution should prefer NCHW")
	}
}

func TestFigure3WinnersMatchPaper(t *testing.T) {
	rows, _ := Figure3(device())
	if len(rows) != 12 {
		t.Fatalf("Fig. 3 covers 12 layers, got %d", len(rows))
	}
	wantCHWN := map[string]bool{"CV1": true, "CV2": true, "CV3": true, "CV4": true, "CV5": true, "CV9": true}
	for _, r := range rows {
		if r.CHWNWins != wantCHWN[r.Layer] {
			t.Errorf("%s: CHWN wins = %v, paper says %v", r.Layer, r.CHWNWins, wantCHWN[r.Layer])
		}
	}
}

func TestFigure4SeriesShapes(t *testing.T) {
	nPts, _ := Figure4N(device())
	if len(nPts) != 9 {
		t.Fatalf("Fig. 4a sweeps 9 batch sizes, got %d", len(nPts))
	}
	if !nPts[len(nPts)-1].CHWNPrefers || nPts[0].CHWNPrefers {
		t.Error("Fig. 4a: CHWN should lose at N=1 and win at N=512")
	}
	cPts, _ := Figure4C(device())
	if len(cPts) != 5 {
		t.Fatalf("Fig. 4b sweeps 5 channel counts, got %d", len(cPts))
	}
	if !cPts[0].CHWNPrefers || cPts[len(cPts)-1].CHWNPrefers {
		t.Error("Fig. 4b: CHWN should win at C=16 and lose at C=256")
	}
}

func TestFigure5OOMRows(t *testing.T) {
	rows, tbl := Figure5(device())
	if len(rows) != 12 {
		t.Fatalf("Fig. 5 covers 12 layers, got %d", len(rows))
	}
	byName := map[string]Figure5Row{}
	for _, r := range rows {
		byName[r.Layer] = r
	}
	if !byName["CV5"].FFTOOM || !byName["CV6"].FFTOOM {
		t.Error("CV5 and CV6 should fail with OOM in the full FFT mode")
	}
	if byName["CV7"].FFTOOM {
		t.Error("CV7 should fit in memory")
	}
	if byName["CV7"].FFTSpeedup <= byName["CV7"].MMSpeedup {
		t.Error("CV7: the FFT mode should beat the MM mode")
	}
	if byName["CV9"].FFTSpeedup >= byName["CV9"].MMSpeedup {
		t.Error("CV9 (C=3): the FFT mode should lose to the MM mode")
	}
	if !strings.Contains(tbl.String(), "OOM") {
		t.Error("the rendered table should mark OOM failures")
	}
}

func TestFigure6CHWNAlwaysWins(t *testing.T) {
	rows, _ := Figure6(device())
	if len(rows) != 10 {
		t.Fatalf("Fig. 6 covers 10 pooling layers, got %d", len(rows))
	}
	for _, r := range rows {
		if r.CaffeSpeedup >= 1 || r.CuDNNSpeedup >= 1 {
			t.Errorf("%s: NCHW pooling should be slower than CHWN (Caffe %.2f, cuDNN %.2f)", r.Layer, r.CaffeSpeedup, r.CuDNNSpeedup)
		}
		if r.CHWNBandwidthGB <= 0 || r.CHWNBandwidthGB > 235 {
			t.Errorf("%s: CHWN bandwidth %.1f GB/s out of range", r.Layer, r.CHWNBandwidthGB)
		}
	}
}

func TestFigure10TransformOverheadOrdering(t *testing.T) {
	rows, _ := Figure10(device())
	if len(rows) != 12 {
		t.Fatalf("Fig. 10 covers 12 layers, got %d", len(rows))
	}
	for _, r := range rows {
		if r.OptSpeedup < 1 {
			t.Errorf("%s: the preferred layout should not lose to the alternative (%.2f)", r.Layer, r.OptSpeedup)
		}
		if r.OptTransSpeedup > r.OptSpeedup {
			t.Errorf("%s: adding transform overhead cannot increase the speedup", r.Layer)
		}
		if r.NaiveTransSpeed > r.OptTransSpeedup {
			t.Errorf("%s: the naive transform cannot beat the optimised transform", r.Layer)
		}
	}
}

func TestFigure11OrderingAndPeak(t *testing.T) {
	rows, _ := Figure11(device())
	if len(rows) != 12 {
		t.Fatalf("Fig. 11 covers 12 layers, got %d", len(rows))
	}
	var bestVec float64
	for _, r := range rows {
		if r.TiledGBs <= r.NaiveGBs {
			t.Errorf("%s: Opt1 (%.1f GB/s) must beat naive (%.1f GB/s)", r.Layer, r.TiledGBs, r.NaiveGBs)
		}
		if r.VecApplic && r.VecGBs <= r.TiledGBs {
			t.Errorf("%s: Opt2 (%.1f GB/s) must beat Opt1 (%.1f GB/s)", r.Layer, r.VecGBs, r.TiledGBs)
		}
		if r.VecGBs > bestVec {
			bestVec = r.VecGBs
		}
	}
	// The paper reports 229.5 GB/s (97.6% of the 235 GB/s effective
	// bandwidth) for the best case.
	if bestVec < 0.9*235 {
		t.Errorf("best vectorised transform bandwidth %.1f GB/s, want >= 90%% of effective", bestVec)
	}
	// N=32 layers (VGG) cannot use the vectorised kernel.
	for _, r := range rows {
		if strings.HasPrefix(r.Layer, "CV1") && (r.Layer == "CV10" || r.Layer == "CV11" || r.Layer == "CV12") && r.VecApplic {
			t.Errorf("%s: vectorised transform should not apply to N=32", r.Layer)
		}
	}
}

func TestFigure12OptimizedPoolingWins(t *testing.T) {
	rows, _ := Figure12(device())
	if len(rows) != 10 {
		t.Fatalf("Fig. 12 covers 10 pooling layers, got %d", len(rows))
	}
	improved := 0
	for _, r := range rows {
		if r.OptSpeedup < 1 {
			t.Errorf("%s: the optimised pooling kernel should not lose to cuda-convnet (%.2f)", r.Layer, r.OptSpeedup)
		}
		if r.OptSpeedup > 1.01 {
			improved++
		}
		if r.OptSpeedup > 1.01 && r.OptReadSavingPc <= 0 {
			t.Errorf("%s: a speedup should come with a DRAM read reduction", r.Layer)
		}
	}
	// All overlapped pooling layers (8 of 10) should benefit from the
	// register-reuse optimisation.
	if improved < 8 {
		t.Errorf("only %d pooling layers improved, expected the 8 overlapped ones", improved)
	}
}

func TestFigure13BandwidthShape(t *testing.T) {
	rows, _ := Figure13(device())
	if len(rows) != 12 {
		t.Fatalf("Fig. 13 covers 12 configurations, got %d", len(rows))
	}
	var maxOpt, maxBase float64
	for _, r := range rows {
		if r.OptGBs < r.BaselineGBs {
			t.Errorf("%s: optimised softmax bandwidth (%.1f) below baseline (%.1f)", r.Config, r.OptGBs, r.BaselineGBs)
		}
		if r.OptGBs > maxOpt {
			maxOpt = r.OptGBs
		}
		if r.BaselineGBs > maxBase {
			maxBase = r.BaselineGBs
		}
	}
	if maxOpt < 0.75*235 {
		t.Errorf("best optimised softmax bandwidth %.1f GB/s, want >= 75%% of effective (paper: 94%%)", maxOpt)
	}
	if maxBase > 0.5*235 {
		t.Errorf("best baseline bandwidth %.1f GB/s should stay well below peak (paper: 58.3 GB/s)", maxBase)
	}
}

func TestFigure14OptimizedWins(t *testing.T) {
	rows, tbl, err := Figure14(device(), thresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Fig. 14 covers 5 networks, got %d", len(rows))
	}
	for _, r := range rows {
		opt := r.Speedups["Opt"]
		for planner, sp := range r.Speedups {
			if planner == "Opt" {
				continue
			}
			if opt < sp*0.999 {
				t.Errorf("%s: Opt speedup %.2f below %s %.2f", r.Network, opt, planner, sp)
			}
		}
	}
	// LeNet: large speedup over cuDNN-MM (paper: 5.61x).
	if rows[0].Network != "LeNet" || rows[0].Speedups["Opt"] < 2 {
		t.Errorf("LeNet Opt speedup %.2f, expected a large factor", rows[0].Speedups["Opt"])
	}
	if tbl.String() == "" {
		t.Error("table must render")
	}
}

func TestFigure15LayoutStory(t *testing.T) {
	rows, _, err := Figure15(device(), thresholds())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Figure15Row{}
	for _, r := range rows {
		byName[r.Layer] = r
	}
	if byName["conv1"].OptLayout != tensor.CHWN.String() {
		t.Errorf("conv1 should run in CHWN, got %s", byName["conv1"].OptLayout)
	}
	for _, l := range []string{"conv3", "conv4", "conv5"} {
		if byName[l].OptLayout != tensor.NCHW.String() {
			t.Errorf("%s should run in NCHW, got %s", l, byName[l].OptLayout)
		}
	}
	// The softmax layer shows a large speedup over cuDNN (paper: up to 20.1x).
	if byName["prob"].OptSpeedup < 2 {
		t.Errorf("softmax Opt speedup %.2f, expected a large factor", byName["prob"].OptSpeedup)
	}
	// On the convolution layers Opt should never lose to the cuDNN-MM
	// baseline it is normalised against (it can always pick the same NCHW
	// GEMM implementation).
	for _, l := range []string{"conv1", "conv2", "conv3", "conv4", "conv5"} {
		if byName[l].OptSpeedup < 0.99 {
			t.Errorf("%s: Opt speedup %.2f below the cuDNN-MM baseline", l, byName[l].OptSpeedup)
		}
	}
}

func TestSoftmaxAblationContributions(t *testing.T) {
	rows, _ := SoftmaxAblation(device())
	if len(rows) != 12 {
		t.Fatalf("expected 12 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.FusionSpeedup < 1 || r.ParallelSpeedup < 1 {
			t.Errorf("%s: both optimisation steps must contribute (fusion %.2f, parallel %.2f)", r.Config, r.FusionSpeedup, r.ParallelSpeedup)
		}
	}
}

func TestPoolingAblationCloseToExhaustive(t *testing.T) {
	rows, _ := PoolingAblation(device())
	if len(rows) != 10 {
		t.Fatalf("expected 10 rows, got %d", len(rows))
	}
	for _, r := range rows {
		// Hill climbing is a heuristic: ceiling effects on small feature
		// maps can leave it in a local optimum, so a modest gap is allowed.
		if r.WithinPct > 15 {
			t.Errorf("%s: hill climbing is %.1f%% away from the exhaustive optimum", r.Layer, r.WithinPct)
		}
		if r.TunedProbes >= r.ExhaustiveProbes {
			t.Errorf("%s: hill climbing should probe fewer points than exhaustive search", r.Layer)
		}
	}
}

func TestHeuristicAccuracyAllAgree(t *testing.T) {
	rows, _ := HeuristicAccuracy(device(), thresholds())
	for _, r := range rows {
		if !r.Agree {
			t.Errorf("%s: heuristic %v disagrees with oracle %v", r.Layer, r.Heuristic, r.Oracle)
		}
	}
}

func TestThresholdCalibrationRows(t *testing.T) {
	rows, _ := ThresholdCalibration()
	if len(rows) != 2 {
		t.Fatalf("expected both devices, got %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Calibrated.Valid() {
			t.Errorf("%s: invalid calibrated thresholds", r.Device)
		}
	}
}

func TestTitanXSummaryTrends(t *testing.T) {
	rows, _, err := TitanXSummary()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected LeNet and VGG, got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.OverCudaConvnet < 1 || r.OverCaffe < 1 || r.OverCuDNNBest < 0.999 {
			t.Errorf("%s: the optimised framework should not lose on the Titan X (%.2f / %.2f / %.2f)",
				r.Network, r.OverCudaConvnet, r.OverCaffe, r.OverCuDNNBest)
		}
	}
}

func TestTrainingStepKeepsLayoutPreference(t *testing.T) {
	rows, tbl := TrainingStep(device())
	if len(rows) != 12 {
		t.Fatalf("expected 12 layers, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.SamePreference {
			t.Errorf("%s: the training step flips the layout preference (fwd CHWN=%v, train CHWN=%v)",
				r.Layer, r.ForwardPrefCHWN, r.TrainPrefCHWN)
		}
		if r.TrainingCHWNUS <= r.ForwardCHWNUS || r.TrainingNCHWUS <= r.ForwardNCHWUS {
			t.Errorf("%s: a training step must cost more than the forward pass alone", r.Layer)
		}
	}
	if tbl.String() == "" {
		t.Error("table must render")
	}
}

func TestTable1InventoryComplete(t *testing.T) {
	tbl := Table1Inventory()
	if len(tbl.Rows) != 12+10+5 {
		t.Errorf("Table 1 inventory has %d rows, want 27", len(tbl.Rows))
	}
}

func TestExperimentsRegistryRunsEverything(t *testing.T) {
	d := device()
	th := thresholds()
	names := ExperimentNames(d, th)
	if len(names) < 19 {
		t.Fatalf("expected at least 19 experiments, got %d", len(names))
	}
	m := Experiments(d, th)
	for _, name := range names {
		tbl, err := m[name]()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", name)
		}
	}
}
