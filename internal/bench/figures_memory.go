package bench

import (
	"fmt"

	"memcnn/internal/autotune"
	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/workloads"
)

// Figure6Row is one pooling layer of Fig. 6: the NCHW libraries' speedup
// relative to cuda-convnet (values below 1 mean they are slower) and the
// bandwidth achieved by the CHWN kernel.
type Figure6Row struct {
	Layer           string
	CHWNTimeUS      float64
	CaffeSpeedup    float64
	CuDNNSpeedup    float64
	CHWNBandwidthGB float64
}

// Figure6 regenerates Fig. 6: the pooling-layer layout comparison.
func Figure6(d *gpusim.Device) ([]Figure6Row, Table) {
	var rows []Figure6Row
	for _, p := range workloads.Table1Pools() {
		chwn := gpusim.EstimateTime(d, kernels.PoolCHWNCost(d, p.Cfg))
		caffe := gpusim.EstimateTime(d, kernels.PoolNCHWCost(d, p.Cfg, kernels.PoolCaffe)).TotalUS
		cudnn := gpusim.EstimateTime(d, kernels.PoolNCHWCost(d, p.Cfg, kernels.PoolCuDNN)).TotalUS
		rows = append(rows, Figure6Row{
			Layer:           p.Name,
			CHWNTimeUS:      chwn.TotalUS,
			CaffeSpeedup:    chwn.TotalUS / caffe,
			CuDNNSpeedup:    chwn.TotalUS / cudnn,
			CHWNBandwidthGB: chwn.AchievedBandwidthGBs,
		})
	}
	t := Table{
		Title:   "Figure 6: pooling with different layouts, normalised to cuda-convnet (CHWN); bandwidth is the CHWN kernel's",
		Headers: []string{"layer", "cuda-convnet", "Caffe", "cuDNN", "CHWN GB/s"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Layer, "1.00", f2(r.CaffeSpeedup), f2(r.CuDNNSpeedup), f1(r.CHWNBandwidthGB)})
	}
	return rows, t
}

// Figure12Row is one pooling layer of Fig. 12: the four implementations
// normalised to cuda-convnet, plus the optimised kernel's details.
type Figure12Row struct {
	Layer           string
	CaffeSpeedup    float64
	CuDNNSpeedup    float64
	OptSpeedup      float64
	OptBandwidthGB  float64
	OptExpansion    kernels.PoolExpansion
	OptReadSavingPc float64 // DRAM read reduction vs the plain CHWN kernel
}

// Figure12 regenerates Fig. 12: the optimised (register-reuse, auto-tuned)
// pooling kernel against the three libraries.
func Figure12(d *gpusim.Device) ([]Figure12Row, Table) {
	var rows []Figure12Row
	for _, p := range workloads.Table1Pools() {
		base := gpusim.EstimateTime(d, kernels.PoolCHWNCost(d, p.Cfg))
		caffe := gpusim.EstimateTime(d, kernels.PoolNCHWCost(d, p.Cfg, kernels.PoolCaffe)).TotalUS
		cudnn := gpusim.EstimateTime(d, kernels.PoolNCHWCost(d, p.Cfg, kernels.PoolCuDNN)).TotalUS
		expansion, _, err := autotune.TunePoolExpansion(d, p.Cfg)
		if err != nil {
			expansion = kernels.PoolExpansion{H: 2, W: 2}
		}
		optStats := kernels.PoolCHWNCoarsenedCost(d, p.Cfg, expansion)
		opt := gpusim.EstimateTime(d, optStats)
		saving := 0.0
		if base.Stats.DRAMReadBytes > 0 {
			saving = 100 * (1 - optStats.DRAMReadBytes/base.Stats.DRAMReadBytes)
		}
		rows = append(rows, Figure12Row{
			Layer:           p.Name,
			CaffeSpeedup:    base.TotalUS / caffe,
			CuDNNSpeedup:    base.TotalUS / cudnn,
			OptSpeedup:      base.TotalUS / opt.TotalUS,
			OptBandwidthGB:  opt.AchievedBandwidthGBs,
			OptExpansion:    expansion,
			OptReadSavingPc: saving,
		})
	}
	t := Table{
		Title:   "Figure 12: pooling implementations normalised to cuda-convnet; Opt = CHWN + auto-tuned register reuse",
		Headers: []string{"layer", "cuda-convnet", "Caffe", "cuDNN", "Opt", "Opt GB/s", "expansion", "DRAM read saved %"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Layer, "1.00", f2(r.CaffeSpeedup), f2(r.CuDNNSpeedup), f2(r.OptSpeedup),
			f1(r.OptBandwidthGB), fmt.Sprintf("%dx%d", r.OptExpansion.H, r.OptExpansion.W), f1(r.OptReadSavingPc),
		})
	}
	return rows, t
}

// Figure13Row is one configuration of Fig. 13: the best baseline softmax
// bandwidth against the optimised fused kernel.
type Figure13Row struct {
	Config      string
	BaselineGBs float64
	OptGBs      float64
	Speedup     float64
}

// Figure13 regenerates Fig. 13: softmax memory bandwidth across batch and
// category configurations.
func Figure13(d *gpusim.Device) ([]Figure13Row, Table) {
	var rows []Figure13Row
	for _, s := range workloads.SoftmaxSweep() {
		baseStats, _ := kernels.SoftmaxBaselineBest(d, s.Cfg)
		base := gpusim.EstimateTime(d, baseStats)
		opt := gpusim.EstimateTime(d, kernels.SoftmaxCost(d, s.Cfg, kernels.SoftmaxFusedParallel))
		rows = append(rows, Figure13Row{
			Config:      s.Name,
			BaselineGBs: base.AchievedBandwidthGBs,
			OptGBs:      opt.AchievedBandwidthGBs,
			Speedup:     base.TotalUS / opt.TotalUS,
		})
	}
	t := Table{
		Title:   "Figure 13: softmax achieved bandwidth (GB/s), best baseline library vs the fused+parallel kernel",
		Headers: []string{"batch/classes", "BL_Best GB/s", "Opt GB/s", "Opt speedup"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Config, f1(r.BaselineGBs), f1(r.OptGBs), f2(r.Speedup)})
	}
	return rows, t
}

// SoftmaxAblationRow splits the softmax gains into the fusion contribution
// and the inner-loop-parallelisation contribution (Section VI.B).
type SoftmaxAblationRow struct {
	Config          string
	FusionSpeedup   float64 // fused (still thread-per-image) over the 5-kernel baseline
	ParallelSpeedup float64 // fused+parallel over fused
	TotalSpeedup    float64
}

// SoftmaxAblation regenerates the Section VI.B ablation of the softmax
// optimisations.
func SoftmaxAblation(d *gpusim.Device) ([]SoftmaxAblationRow, Table) {
	var rows []SoftmaxAblationRow
	for _, s := range workloads.SoftmaxSweep() {
		base := gpusim.EstimateTime(d, kernels.SoftmaxCost(d, s.Cfg, kernels.SoftmaxThreadPerImage)).TotalUS
		fused := gpusim.EstimateTime(d, kernels.SoftmaxCost(d, s.Cfg, kernels.SoftmaxFused)).TotalUS
		full := gpusim.EstimateTime(d, kernels.SoftmaxCost(d, s.Cfg, kernels.SoftmaxFusedParallel)).TotalUS
		rows = append(rows, SoftmaxAblationRow{
			Config:          s.Name,
			FusionSpeedup:   base / fused,
			ParallelSpeedup: fused / full,
			TotalSpeedup:    base / full,
		})
	}
	t := Table{
		Title:   "Softmax ablation: kernel fusion vs inner-loop parallelisation (speedups over the 5-kernel thread-per-image baseline)",
		Headers: []string{"batch/classes", "fusion", "+parallel inner loops", "total"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Config, f2(r.FusionSpeedup), f2(r.ParallelSpeedup), f2(r.TotalSpeedup)})
	}
	return rows, t
}

// PoolingAblationRow compares the hill-climbing pick against the exhaustive
// optimum of the coarsening space for one pooling layer.
type PoolingAblationRow struct {
	Layer            string
	TunedExpansion   kernels.PoolExpansion
	TunedUS          float64
	ExhaustiveUS     float64
	TunedProbes      int
	ExhaustiveProbes int
	WithinPct        float64 // how far the tuned pick is from the optimum
}

// PoolingAblation regenerates the auto-tuner ablation: hill climbing versus
// exhaustive search of the working-set expansion factors.
func PoolingAblation(d *gpusim.Device) ([]PoolingAblationRow, Table) {
	var rows []PoolingAblationRow
	for _, p := range workloads.Table1Pools() {
		tuned, res, err := autotune.TunePoolExpansion(d, p.Cfg)
		if err != nil {
			continue
		}
		_, exhaustiveUS, probes, err := autotune.ExhaustivePoolExpansion(d, p.Cfg, 6)
		if err != nil {
			continue
		}
		within := 0.0
		if exhaustiveUS > 0 {
			within = 100 * (res.Best.CostUS - exhaustiveUS) / exhaustiveUS
		}
		rows = append(rows, PoolingAblationRow{
			Layer:            p.Name,
			TunedExpansion:   tuned,
			TunedUS:          res.Best.CostUS,
			ExhaustiveUS:     exhaustiveUS,
			TunedProbes:      len(res.Evaluated),
			ExhaustiveProbes: probes,
			WithinPct:        within,
		})
	}
	t := Table{
		Title:   "Pooling auto-tuner ablation: hill climbing vs exhaustive search of expansion factors",
		Headers: []string{"layer", "tuned", "tuned us", "exhaustive us", "gap %", "probes (hill)", "probes (exhaustive)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Layer, fmt.Sprintf("%dx%d", r.TunedExpansion.H, r.TunedExpansion.W),
			f1(r.TunedUS), f1(r.ExhaustiveUS), f2(r.WithinPct), fmt.Sprint(r.TunedProbes), fmt.Sprint(r.ExhaustiveProbes),
		})
	}
	return rows, t
}
