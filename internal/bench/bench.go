// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation from the kernel and network cost models.
// Each Figure* function returns typed rows plus a formatted text table so the
// cmd/ tools, the examples and the testing.B benchmarks all share one
// implementation.  EXPERIMENTS.md records how the regenerated numbers compare
// with the published ones.
package bench

import (
	"fmt"
	"strings"
)

// Table is a simple formatted result table shared by all experiments.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// String renders the table as aligned plain text.
func (t Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
