package bench

import (
	"fmt"
	"sort"

	"memcnn/internal/frameworks"
	"memcnn/internal/gpusim"
	"memcnn/internal/layout"
	"memcnn/internal/network"
	"memcnn/internal/workloads"
)

// Figure14Row is one network of Fig. 14: the speedup of every mechanism over
// the cuDNN-MM baseline.
type Figure14Row struct {
	Network  string
	TimesUS  map[string]float64 // planner name -> total time
	Speedups map[string]float64 // planner name -> speedup over cuDNN-MM
}

// plannerOrder is the presentation order of Fig. 14's bars.
var plannerOrder = []string{"cuDNN-MM", "cuDNN-FFT", "cuDNN-FFT-T", "cuda-convnet", "cuDNN-Best", "Opt"}

// Figure14 regenerates Fig. 14: the whole-network comparison of the six
// mechanisms on the five networks.
func Figure14(d *gpusim.Device, th layout.Thresholds) ([]Figure14Row, Table, error) {
	nets, err := workloads.Networks()
	if err != nil {
		return nil, Table{}, err
	}
	var rows []Figure14Row
	for _, name := range workloads.NetworkOrder {
		row := Figure14Row{Network: name, TimesUS: map[string]float64{}, Speedups: map[string]float64{}}
		for _, p := range frameworks.All(th) {
			plan, err := p.Plan(d, nets[name])
			if err != nil {
				return nil, Table{}, fmt.Errorf("bench: %s on %s: %w", p.Name(), name, err)
			}
			est, err := plan.Estimate()
			if err != nil {
				return nil, Table{}, err
			}
			row.TimesUS[p.Name()] = est.TotalUS
		}
		base := row.TimesUS["cuDNN-MM"]
		for planner, us := range row.TimesUS {
			row.Speedups[planner] = base / us
		}
		rows = append(rows, row)
	}
	t := Table{
		Title:   "Figure 14: whole-network speedup normalised to cuDNN-MM",
		Headers: append([]string{"network"}, plannerOrder...),
	}
	for _, r := range rows {
		cells := []string{r.Network}
		for _, p := range plannerOrder {
			cells = append(cells, f2(r.Speedups[p]))
		}
		t.Rows = append(t.Rows, cells)
	}
	return rows, t, nil
}

// Figure15Row is one AlexNet layer of Fig. 15: per-layer speedups normalised
// to cuDNN-MM, plus the layout the optimiser chose.
type Figure15Row struct {
	Layer              string
	CuDNNUS            float64
	CudaConvnetSpeedup float64
	OptSpeedup         float64
	OptLayout          string
	OptTransformUS     float64
}

// Figure15 regenerates Fig. 15: the per-layer breakdown of AlexNet under
// cuDNN-MM, cuda-convnet and the optimised framework.
func Figure15(d *gpusim.Device, th layout.Thresholds) ([]Figure15Row, Table, error) {
	net, err := workloads.AlexNet()
	if err != nil {
		return nil, Table{}, err
	}
	estimates := map[string]network.Estimate{}
	for _, p := range []network.Planner{frameworks.CuDNN(frameworks.CuDNNMM), frameworks.CudaConvnet(), frameworks.Optimized(th)} {
		plan, err := p.Plan(d, net)
		if err != nil {
			return nil, Table{}, err
		}
		est, err := plan.Estimate()
		if err != nil {
			return nil, Table{}, err
		}
		estimates[p.Name()] = est
	}
	cudnn := estimates["cuDNN-MM"]
	cc := estimates["cuda-convnet"]
	opt := estimates["Opt"]

	var rows []Figure15Row
	for i := range cudnn.PerLayer {
		base := cudnn.PerLayer[i]
		rows = append(rows, Figure15Row{
			Layer:              base.Name,
			CuDNNUS:            base.Total(),
			CudaConvnetSpeedup: base.Total() / cc.PerLayer[i].Total(),
			OptSpeedup:         base.Total() / opt.PerLayer[i].Total(),
			OptLayout:          opt.PerLayer[i].Layout.String(),
			OptTransformUS:     opt.PerLayer[i].TransformUS,
		})
	}
	t := Table{
		Title:   "Figure 15: AlexNet per-layer speedup normalised to cuDNN-MM",
		Headers: []string{"layer", "cuDNN-MM us", "cuda-convnet", "Opt", "Opt layout", "Opt transform us"},
		Notes: []string{
			fmt.Sprintf("whole-network: cuda-convnet %.2fx, Opt %.2fx over cuDNN-MM; Opt spends %.0fus in %d transforms",
				cudnn.TotalUS/cc.TotalUS, cudnn.TotalUS/opt.TotalUS, opt.TransformUS, transformCount(opt)),
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Layer, f1(r.CuDNNUS), f2(r.CudaConvnetSpeedup), f2(r.OptSpeedup), r.OptLayout, f1(r.OptTransformUS)})
	}
	return rows, t, nil
}

func transformCount(est network.Estimate) int {
	count := 0
	for _, lt := range est.PerLayer {
		if lt.TransformUS > 0 {
			count++
		}
	}
	return count
}

// CalibrationRow is one device's calibrated thresholds.
type CalibrationRow struct {
	Device     string
	Calibrated layout.Thresholds
	Published  layout.Thresholds
}

// ThresholdCalibration calibrates the layout thresholds on both modelled
// devices and lists them next to the paper's published values.
func ThresholdCalibration() ([]CalibrationRow, Table) {
	rows := []CalibrationRow{
		{Device: "GTX Titan Black", Calibrated: layout.Calibrate(gpusim.TitanBlack()), Published: layout.TitanBlackThresholds()},
		{Device: "GTX Titan X", Calibrated: layout.Calibrate(gpusim.TitanX()), Published: layout.TitanXThresholds()},
	}
	t := Table{
		Title:   "Layout-selection threshold calibration (one-time per device)",
		Headers: []string{"device", "calibrated (Ct, Nt)", "published (Ct, Nt)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Device, r.Calibrated.String(), r.Published.String()})
	}
	return rows, t
}

// TitanXRow is one network of the Section VI.C Titan X summary.
type TitanXRow struct {
	Network            string
	OverCudaConvnet    float64
	OverCaffe          float64
	OverCuDNNBest      float64
	OptTimeUS          float64
	CuDNNBestTimeUS    float64
	CudaConvnetTimeUS  float64
	CaffeTimeUS        float64
	calibrationApplied layout.Thresholds
}

// TitanXSummary regenerates the Section VI.C cross-device check: the same
// trends on the Titan X model for the small MNIST network and for VGG.
func TitanXSummary() ([]TitanXRow, Table, error) {
	d := gpusim.TitanX()
	th := layout.Calibrate(d)
	nets, err := workloads.Networks()
	if err != nil {
		return nil, Table{}, err
	}
	planners := []network.Planner{frameworks.CudaConvnet(), frameworks.Caffe(), frameworks.CuDNN(frameworks.CuDNNBest), frameworks.Optimized(th)}
	var rows []TitanXRow
	for _, name := range []string{"LeNet", "VGG"} {
		times := map[string]float64{}
		for _, p := range planners {
			plan, err := p.Plan(d, nets[name])
			if err != nil {
				return nil, Table{}, err
			}
			est, err := plan.Estimate()
			if err != nil {
				return nil, Table{}, err
			}
			times[p.Name()] = est.TotalUS
		}
		rows = append(rows, TitanXRow{
			Network:            name,
			OverCudaConvnet:    times["cuda-convnet"] / times["Opt"],
			OverCaffe:          times["Caffe"] / times["Opt"],
			OverCuDNNBest:      times["cuDNN-Best"] / times["Opt"],
			OptTimeUS:          times["Opt"],
			CuDNNBestTimeUS:    times["cuDNN-Best"],
			CudaConvnetTimeUS:  times["cuda-convnet"],
			CaffeTimeUS:        times["Caffe"],
			calibrationApplied: th,
		})
	}
	t := Table{
		Title:   fmt.Sprintf("Section VI.C: Titan X summary (calibrated thresholds %v)", th),
		Headers: []string{"network", "Opt vs cuda-convnet", "Opt vs Caffe", "Opt vs cuDNN-Best"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Network, f2(r.OverCudaConvnet), f2(r.OverCaffe), f2(r.OverCuDNNBest)})
	}
	return rows, t, nil
}

// Table1Inventory formats the Table 1 layer inventory (the workload table the
// rest of the experiments draw from).
func Table1Inventory() Table {
	t := Table{
		Title:   "Table 1: benchmark layer configurations",
		Headers: []string{"layer", "network", "configuration"},
	}
	for _, c := range workloads.Table1Convs() {
		t.Rows = append(t.Rows, []string{c.Name, c.Network, c.Cfg.String()})
	}
	for _, p := range workloads.Table1Pools() {
		t.Rows = append(t.Rows, []string{p.Name, p.Network, p.Cfg.String()})
	}
	for _, s := range workloads.Table1Softmax() {
		t.Rows = append(t.Rows, []string{s.Name, s.Network, s.Cfg.String()})
	}
	return t
}

// Experiments lists every named experiment the harness can run, mapped to a
// function that renders its table.  The cmd/layerbench tool exposes it.
func Experiments(d *gpusim.Device, th layout.Thresholds) map[string]func() (Table, error) {
	m := map[string]func() (Table, error){
		"table1":           func() (Table, error) { return Table1Inventory(), nil },
		"fig1":             func() (Table, error) { _, t := Figure1(d); return t, nil },
		"fig3":             func() (Table, error) { _, t := Figure3(d); return t, nil },
		"fig4a":            func() (Table, error) { _, t := Figure4N(d); return t, nil },
		"fig4b":            func() (Table, error) { _, t := Figure4C(d); return t, nil },
		"fig5":             func() (Table, error) { _, t := Figure5(d); return t, nil },
		"fig6":             func() (Table, error) { _, t := Figure6(d); return t, nil },
		"fig10":            func() (Table, error) { _, t := Figure10(d); return t, nil },
		"fig11":            func() (Table, error) { _, t := Figure11(d); return t, nil },
		"fig12":            func() (Table, error) { _, t := Figure12(d); return t, nil },
		"fig13":            func() (Table, error) { _, t := Figure13(d); return t, nil },
		"fig14":            func() (Table, error) { _, t, err := Figure14(d, th); return t, err },
		"fig15":            func() (Table, error) { _, t, err := Figure15(d, th); return t, err },
		"softmax-ablation": func() (Table, error) { _, t := SoftmaxAblation(d); return t, nil },
		"training":         func() (Table, error) { _, t := TrainingStep(d); return t, nil },
		"pooling-ablation": func() (Table, error) { _, t := PoolingAblation(d); return t, nil },
		"heuristic":        func() (Table, error) { _, t := HeuristicAccuracy(d, th); return t, nil },
		"calibration":      func() (Table, error) { _, t := ThresholdCalibration(); return t, nil },
		"titanx":           func() (Table, error) { _, t, err := TitanXSummary(); return t, err },
	}
	return m
}

// ExperimentNames returns the experiment keys in a stable order.
func ExperimentNames(d *gpusim.Device, th layout.Thresholds) []string {
	m := Experiments(d, th)
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
