package layers

import (
	"math"
	"testing"

	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/tensor"
)

func testConvLayer(t *testing.T) *Conv {
	t.Helper()
	c, err := NewConv("conv1", kernels.ConvConfig{N: 2, C: 3, H: 8, W: 8, K: 4, FH: 3, FW: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewConvValidation(t *testing.T) {
	if _, err := NewConv("bad", kernels.ConvConfig{}, 1); err == nil {
		t.Error("invalid conv config must be rejected")
	}
	c := testConvLayer(t)
	if c.Name() != "conv1" {
		t.Errorf("Name = %q", c.Name())
	}
	if c.InputShape() != (tensor.Shape{N: 2, C: 3, H: 8, W: 8}) {
		t.Errorf("InputShape = %v", c.InputShape())
	}
	if c.OutputShape() != (tensor.Shape{N: 2, C: 4, H: 6, W: 6}) {
		t.Errorf("OutputShape = %v", c.OutputShape())
	}
}

func TestConvSupportsLayouts(t *testing.T) {
	c := testConvLayer(t)
	if !c.SupportsLayout(tensor.CHWN) || !c.SupportsLayout(tensor.NCHW) {
		t.Error("conv must support CHWN and NCHW")
	}
	if c.SupportsLayout(tensor.NHWC) {
		t.Error("conv should not claim NHWC support")
	}
}

func TestConvCostByLayoutAndImpl(t *testing.T) {
	d := gpusim.TitanBlack()
	c := testConvLayer(t)

	chwn, err := c.Cost(d, tensor.CHWN, CostOptions{})
	if err != nil || len(chwn) != 1 {
		t.Fatalf("CHWN cost: %v (%d kernels)", err, len(chwn))
	}
	nchw, err := c.Cost(d, tensor.NCHW, CostOptions{})
	if err != nil || len(nchw) != 2 {
		t.Fatalf("NCHW cost: %v (%d kernels, want im2col+gemm)", err, len(nchw))
	}
	if _, err := c.Cost(d, tensor.NCHW, CostOptions{Conv: ConvBestNCHW}); err != nil {
		t.Errorf("best-NCHW cost: %v", err)
	}
	if _, err := c.Cost(d, tensor.NCHW, CostOptions{Conv: ConvFFTImpl}); err != nil {
		t.Errorf("FFT cost on a small layer should fit: %v", err)
	}
	if _, err := c.Cost(d, tensor.CHWN, CostOptions{Conv: ConvGemmImpl}); err == nil {
		t.Error("GEMM convolution must be rejected in CHWN")
	}
	if _, err := c.Cost(d, tensor.NCHW, CostOptions{Conv: ConvDirectImpl}); err == nil {
		t.Error("direct convolution must be rejected in NCHW")
	}
	if _, err := c.Cost(d, tensor.NHWC, CostOptions{}); err == nil {
		t.Error("unsupported layout must be rejected")
	}
}

func TestConvBestNCHWNeverSlowerThanGemm(t *testing.T) {
	d := gpusim.TitanBlack()
	cfgs := []kernels.ConvConfig{
		{N: 64, C: 256, H: 13, W: 13, K: 384, FH: 3, FW: 3},
		{N: 128, C: 16, H: 14, W: 14, K: 16, FH: 5, FW: 5},
		{N: 32, C: 128, H: 56, W: 56, K: 256, FH: 3, FW: 3},
	}
	for _, cfg := range cfgs {
		c, err := NewConv("c", cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		gemm, err := c.Cost(d, tensor.NCHW, CostOptions{Conv: ConvGemmImpl})
		if err != nil {
			t.Fatal(err)
		}
		best, err := c.Cost(d, tensor.NCHW, CostOptions{Conv: ConvBestNCHW})
		if err != nil {
			t.Fatal(err)
		}
		gemmT, _ := gpusim.EstimateSequence(d, gemm)
		bestT, _ := gpusim.EstimateSequence(d, best)
		if bestT > gemmT*1.0001 {
			t.Errorf("%v: best-NCHW (%.0fus) slower than GEMM (%.0fus)", cfg, bestT, gemmT)
		}
	}
}

func TestConvForwardMatchesKernels(t *testing.T) {
	c := testConvLayer(t)
	in := tensor.Random(c.InputShape(), tensor.CHWN, 7)
	got, err := c.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := kernels.ConvDirect(in, c.Filters(), c.Cfg, tensor.CHWN)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, want, 0) {
		t.Error("layer forward differs from the kernel reference")
	}
	if got.Layout != in.Layout {
		t.Error("forward should preserve the input layout")
	}
}

func TestPoolLayer(t *testing.T) {
	d := gpusim.TitanBlack()
	p, err := NewPool("pool1", kernels.PoolConfig{N: 4, C: 2, H: 8, W: 8, Window: 2, Stride: 2, Op: kernels.MaxPool})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPool("bad", kernels.PoolConfig{}); err == nil {
		t.Error("invalid pool config must be rejected")
	}
	if p.OutputShape() != (tensor.Shape{N: 4, C: 2, H: 4, W: 4}) {
		t.Errorf("OutputShape = %v", p.OutputShape())
	}

	if _, err := p.Cost(d, tensor.CHWN, CostOptions{}); err != nil {
		t.Errorf("plain CHWN pooling: %v", err)
	}
	if _, err := p.Cost(d, tensor.CHWN, CostOptions{Pool: PoolOptimized}); err != nil {
		t.Errorf("optimised CHWN pooling: %v", err)
	}
	if _, err := p.Cost(d, tensor.NCHW, CostOptions{Pool: PoolCuDNNVariant}); err != nil {
		t.Errorf("cuDNN NCHW pooling: %v", err)
	}
	if _, err := p.Cost(d, tensor.NCHW, CostOptions{Pool: PoolOptimized}); err == nil {
		t.Error("optimised pooling must require CHWN")
	}
	if _, err := p.Cost(d, tensor.CHWN, CostOptions{Pool: PoolCuDNNVariant}); err == nil {
		t.Error("cuDNN pooling must require NCHW")
	}
	if _, err := p.Cost(d, tensor.HWCN, CostOptions{}); err == nil {
		t.Error("unsupported layout must be rejected")
	}

	in := tensor.Random(p.InputShape(), tensor.NCHW, 3)
	out, err := p.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape != p.OutputShape() {
		t.Errorf("forward output shape %v", out.Shape)
	}
}

func TestPoolOptimizedDefaultExpansion(t *testing.T) {
	d := gpusim.TitanBlack()
	p, err := NewPool("pool3", kernels.PoolConfig{N: 128, C: 64, H: 24, W: 24, Window: 3, Stride: 2, Op: kernels.MaxPool})
	if err != nil {
		t.Fatal(err)
	}
	def, err := p.Cost(d, tensor.CHWN, CostOptions{Pool: PoolOptimized})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := p.Cost(d, tensor.CHWN, CostOptions{Pool: PoolOptimized, PoolExpansion: kernels.PoolExpansion{H: 2, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if def[0].DRAMReadBytes != explicit[0].DRAMReadBytes {
		t.Error("default expansion should be 2x2")
	}
}

func TestSoftmaxLayer(t *testing.T) {
	d := gpusim.TitanBlack()
	s, err := NewSoftmax("prob", kernels.SoftmaxConfig{N: 8, Classes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSoftmax("bad", kernels.SoftmaxConfig{}); err == nil {
		t.Error("invalid softmax config must be rejected")
	}
	if s.InputShape() != (tensor.Shape{N: 8, C: 10, H: 1, W: 1}) {
		t.Errorf("InputShape = %v", s.InputShape())
	}
	if _, err := s.Cost(d, tensor.NCHW, CostOptions{Softmax: kernels.SoftmaxFusedParallel}); err != nil {
		t.Errorf("softmax cost: %v", err)
	}
	if _, err := s.Cost(d, tensor.NHWC, CostOptions{}); err == nil {
		t.Error("unsupported layout must be rejected")
	}

	in := tensor.Random(s.InputShape(), tensor.NCHW, 5)
	out, err := s.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 8; n++ {
		var sum float64
		for c := 0; c < 10; c++ {
			sum += float64(out.At(n, c, 0, 0))
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d sums to %v", n, sum)
		}
	}
	wrong := tensor.New(tensor.Shape{N: 8, C: 11, H: 1, W: 1}, tensor.NCHW)
	if _, err := s.Forward(wrong); err == nil {
		t.Error("wrong input shape must be rejected")
	}
}

func TestFullyConnectedLayer(t *testing.T) {
	d := gpusim.TitanBlack()
	fc, err := NewFullyConnected("fc1", 4, 6, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFullyConnected("bad", 0, 1, 1, 0); err == nil {
		t.Error("invalid dims must be rejected")
	}
	if fc.OutputShape() != (tensor.Shape{N: 4, C: 3, H: 1, W: 1}) {
		t.Errorf("OutputShape = %v", fc.OutputShape())
	}
	cost, err := fc.Cost(d, tensor.NCHW, CostOptions{})
	if err != nil || len(cost) != 1 {
		t.Fatalf("fc cost: %v", err)
	}
	if cost[0].FLOPs != 2*3*4*6 {
		t.Errorf("fc FLOPs = %v", cost[0].FLOPs)
	}
	if _, err := fc.Cost(d, tensor.NHWC, CostOptions{}); err == nil {
		t.Error("unsupported layout must be rejected")
	}

	// Functional check against a hand-computed case: weights from the
	// deterministic generator, identity-like input.
	in := tensor.Random(tensor.Shape{N: 4, C: 6, H: 1, W: 1}, tensor.NCHW, 9)
	out, err := fc.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	w := fc.Weights()
	for n := 0; n < 4; n++ {
		for o := 0; o < 3; o++ {
			var want float64
			for k := 0; k < 6; k++ {
				want += float64(in.At(n, k, 0, 0)) * float64(w[o*6+k])
			}
			if math.Abs(float64(out.At(n, o, 0, 0))-want) > 1e-4 {
				t.Fatalf("fc output (%d,%d) = %v, want %v", n, o, out.At(n, o, 0, 0), want)
			}
		}
	}
	// Flattened 4-D input from a conv layer must also be accepted.
	conv4d := tensor.Random(tensor.Shape{N: 4, C: 2, H: 3, W: 1}, tensor.CHWN, 3)
	if _, err := fc.Forward(conv4d); err != nil {
		t.Errorf("4-D input with matching element count must be accepted: %v", err)
	}
	wrong := tensor.Random(tensor.Shape{N: 4, C: 7, H: 1, W: 1}, tensor.NCHW, 3)
	if _, err := fc.Forward(wrong); err == nil {
		t.Error("mismatched input must be rejected")
	}
}

func TestReLULayer(t *testing.T) {
	d := gpusim.TitanBlack()
	shape := tensor.Shape{N: 2, C: 3, H: 4, W: 4}
	r, err := NewReLU("relu1", shape)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReLU("bad", tensor.Shape{}); err == nil {
		t.Error("invalid shape must be rejected")
	}
	cost, err := r.Cost(d, tensor.CHWN, CostOptions{})
	if err != nil || len(cost) != 1 {
		t.Fatalf("relu cost: %v", err)
	}
	if cost[0].DRAMReadBytes != float64(shape.Bytes()) {
		t.Error("relu should read the tensor once")
	}
	in := tensor.Random(shape, tensor.NCHW, 1)
	out, err := r.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data {
		if v < 0 {
			t.Fatalf("negative value %v survived ReLU at %d", v, i)
		}
		if in.Data[i] > 0 && v != in.Data[i] {
			t.Fatalf("positive value altered at %d", i)
		}
	}
	if _, err := r.Forward(tensor.New(tensor.Shape{N: 1, C: 1, H: 1, W: 1}, tensor.NCHW)); err == nil {
		t.Error("wrong shape must be rejected")
	}
	if !r.SupportsLayout(tensor.NHWC) {
		t.Error("relu is layout agnostic")
	}
}

func TestLRNLayer(t *testing.T) {
	d := gpusim.TitanBlack()
	shape := tensor.Shape{N: 2, C: 8, H: 3, W: 3}
	l, err := NewLRN("norm1", shape, 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLRN("bad", tensor.Shape{}, 5, 0, 0); err == nil {
		t.Error("invalid shape must be rejected")
	}
	if _, err := NewLRN("bad", shape, 0, 0, 0); err == nil {
		t.Error("invalid local size must be rejected")
	}
	if l.Alpha == 0 || l.Beta == 0 {
		t.Error("defaults must be applied")
	}
	if _, err := l.Cost(d, tensor.NCHW, CostOptions{}); err != nil {
		t.Errorf("lrn cost: %v", err)
	}
	in := tensor.Random(shape, tensor.NCHW, 11)
	out, err := l.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	// LRN shrinks magnitudes (scale <= 1) and preserves sign.
	for n := 0; n < shape.N; n++ {
		for c := 0; c < shape.C; c++ {
			for h := 0; h < shape.H; h++ {
				for w := 0; w < shape.W; w++ {
					iv, ov := in.At(n, c, h, w), out.At(n, c, h, w)
					if math.Abs(float64(ov)) > math.Abs(float64(iv))+1e-6 {
						t.Fatalf("LRN increased magnitude at (%d,%d,%d,%d)", n, c, h, w)
					}
					if iv > 0 && ov < 0 || iv < 0 && ov > 0 {
						t.Fatalf("LRN flipped sign at (%d,%d,%d,%d)", n, c, h, w)
					}
				}
			}
		}
	}
	if _, err := l.Forward(tensor.New(tensor.Shape{N: 1, C: 1, H: 1, W: 1}, tensor.NCHW)); err == nil {
		t.Error("wrong shape must be rejected")
	}
}

func TestImplStrings(t *testing.T) {
	for _, impl := range []ConvImpl{ConvAuto, ConvDirectImpl, ConvGemmImpl, ConvFFTImpl, ConvFFTTilingImpl, ConvBestNCHW, ConvImpl(42)} {
		if impl.String() == "" {
			t.Error("ConvImpl.String must not be empty")
		}
	}
	for _, impl := range []PoolImpl{PoolPlain, PoolOptimized, PoolCuDNNVariant, PoolImpl(42)} {
		if impl.String() == "" {
			t.Error("PoolImpl.String must not be empty")
		}
	}
}

// TestWithBatchSharesWeights checks the Rebatcher contract: a rebatched conv
// or fully-connected layer adopts its parent's weight storage lazily — same
// backing arrays, no regeneration — and the packed GEMM operand is only
// materialised when a GEMM program asks for it.
func TestWithBatchSharesWeights(t *testing.T) {
	c := testConvLayer(t)
	rb, err := c.WithBatch(5)
	if err != nil {
		t.Fatal(err)
	}
	nc := rb.(*Conv)
	if nc.InputShape().N != 5 || nc.OutputShape().N != 5 {
		t.Fatalf("rebatched conv has shapes %v -> %v, want batch 5", nc.InputShape(), nc.OutputShape())
	}
	if nc.packed != nil || c.packed != nil {
		t.Error("WithBatch materialised the packed GEMM operand eagerly")
	}
	if &nc.Filters().Data[0] != &c.Filters().Data[0] {
		t.Error("rebatched conv does not share its parent's filter storage")
	}
	if &nc.PackedFilters()[0] != &c.PackedFilters()[0] {
		t.Error("rebatched conv does not share its parent's packed operand")
	}

	f, err := NewFullyConnected("fc1", 2, 12, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := f.WithBatch(3)
	if err != nil {
		t.Fatal(err)
	}
	nf := rf.(*FullyConnected)
	if &nf.Weights()[0] != &f.Weights()[0] {
		t.Error("rebatched fully-connected layer does not share its parent's weights")
	}
}
