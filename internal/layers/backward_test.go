package layers

import (
	"math"
	"testing"

	"memcnn/internal/kernels"
	"memcnn/internal/tensor"
)

// Finite-difference checks for the backward passes that live at the layer
// level (fully connected, LRN) plus the SGD update contract.  The probe is
// L(x) = Σ dOut·forward(x), whose gradient is the backward kernel applied to
// cotangent dOut.

const (
	fdStep = 1e-2
	fdTol  = 2e-2
)

func fdRelErr(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Abs(a)+math.Abs(b))
}

func probe(w, out []float32) float64 {
	var s float64
	for i, v := range out {
		s += float64(w[i]) * float64(v)
	}
	return s
}

func fdCheck(t *testing.T, name string, x, grad []float32, loss func() float64) {
	t.Helper()
	bad := 0
	for i := range x {
		orig := x[i]
		x[i] = orig + fdStep
		up := loss()
		x[i] = orig - fdStep
		down := loss()
		x[i] = orig
		fd := (up - down) / (2 * fdStep)
		if err := fdRelErr(fd, float64(grad[i])); err > fdTol {
			if bad < 5 {
				t.Errorf("%s: element %d: fd %v vs analytic %v (rel err %v)", name, i, fd, grad[i], err)
			}
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("%s: %d/%d gradient elements outside tolerance", name, bad, len(x))
	}
}

func TestFullyConnectedBackwardGradient(t *testing.T) {
	fc := &FullyConnected{LayerName: "fc", Batch: 3, InDim: 7, OutDim: 4, Seed: 71}
	in := tensor.Random(fc.InputShape(), tensor.NCHW, 72)
	dOut := tensor.Random(fc.OutputShape(), tensor.NCHW, 73)

	out := tensor.New(fc.OutputShape(), tensor.NCHW)
	loss := func() float64 {
		if err := fc.ForwardInto(in, out); err != nil {
			t.Fatal(err)
		}
		return probe(dOut.Data, out.Data)
	}

	dIn := tensor.New(fc.InputShape(), tensor.NCHW)
	if err := fc.BackwardDataInto(nil, dOut, dIn, nil); err != nil {
		t.Fatal(err)
	}
	fdCheck(t, "fc-bwd-data", in.Data, dIn.Data, loss)

	dW := tensor.New(fc.GradShape(), tensor.NCHW)
	if err := fc.BackwardFilterInto(in, dOut, dW); err != nil {
		t.Fatal(err)
	}
	fdCheck(t, "fc-bwd-filter", fc.Weights(), dW.Data, loss)
}

func TestLRNBackwardGradient(t *testing.T) {
	shape := tensor.Shape{N: 2, C: 5, H: 3, W: 3}
	// A large alpha makes the normalisation term carry real gradient signal
	// (AlexNet's 1e-4 would vanish under the FD tolerance).
	lrn, err := NewLRN("lrn", shape, 3, 0.5, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.Random(shape, tensor.NCHW, 81)
	dOut := tensor.Random(shape, tensor.NCHW, 82)

	out := tensor.New(shape, tensor.NCHW)
	loss := func() float64 {
		if err := lrn.ForwardInto(in, out); err != nil {
			t.Fatal(err)
		}
		return probe(dOut.Data, out.Data)
	}

	dIn := tensor.New(shape, tensor.NCHW)
	scratch := make([]float32, lrn.BackwardWorkspaceElems())
	if err := lrn.BackwardDataInto(in, dOut, dIn, scratch); err != nil {
		t.Fatal(err)
	}
	fdCheck(t, "lrn-bwd-data", in.Data, dIn.Data, loss)
}

// TestConvApplySGDRefreshesPacked checks the staleness contract: the GEMM
// path's packed filter copy must track an in-place weight update.
func TestConvApplySGDRefreshesPacked(t *testing.T) {
	conv, err := NewConv("conv", kernels.ConvConfig{N: 1, C: 2, H: 5, W: 5, K: 3, FH: 3, FW: 3, PadH: 1, PadW: 1}, 91)
	if err != nil {
		t.Fatal(err)
	}
	packedBefore := append([]float32(nil), conv.PackedFilters()...)

	dW := tensor.New(conv.GradShape(), tensor.NCHW)
	for i := range dW.Data {
		dW.Data[i] = float32(i%7) * 0.01
	}
	want := make([]float32, len(conv.Filters().Data))
	for i, w := range conv.Filters().Data {
		want[i] = w - 0.1*dW.Data[i]
	}
	if err := conv.ApplySGD(dW, 0.1); err != nil {
		t.Fatal(err)
	}
	for i, w := range conv.Filters().Data {
		if math.Float32bits(w) != math.Float32bits(want[i]) {
			t.Fatalf("filter %d: got %v want %v", i, w, want[i])
		}
	}
	packedAfter := conv.PackedFilters()
	same := true
	for i := range packedAfter {
		if packedAfter[i] != packedBefore[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("packed filters unchanged after SGD update")
	}
	// The packed copy must be the flattening of the updated filters: compare
	// against a freshly built conv holding the updated weights.
	fresh, err := NewConv("conv2", kernels.ConvConfig{N: 1, C: 2, H: 5, W: 5, K: 3, FH: 3, FW: 3, PadH: 1, PadW: 1}, 91)
	if err != nil {
		t.Fatal(err)
	}
	copy(fresh.Filters().Data, conv.Filters().Data)
	freshPacked := fresh.PackedFilters()
	for i := range packedAfter {
		if math.Float32bits(packedAfter[i]) != math.Float32bits(freshPacked[i]) {
			t.Fatalf("packed filter %d stale after SGD: got %v want %v", i, packedAfter[i], freshPacked[i])
		}
	}
}

func TestFullyConnectedApplySGD(t *testing.T) {
	fc := &FullyConnected{LayerName: "fc", Batch: 2, InDim: 3, OutDim: 2, Seed: 95}
	before := append([]float32(nil), fc.Weights()...)
	dW := tensor.New(fc.GradShape(), tensor.NCHW)
	for i := range dW.Data {
		dW.Data[i] = float32(i) * 0.5
	}
	if err := fc.ApplySGD(dW, 0.2); err != nil {
		t.Fatal(err)
	}
	for i, w := range fc.Weights() {
		want := before[i] - 0.2*dW.Data[i]
		if math.Float32bits(w) != math.Float32bits(want) {
			t.Fatalf("weight %d: got %v want %v", i, w, want)
		}
	}
}

// The training interfaces must be satisfied exactly as the compiler relies on
// them: every feature layer propagates gradients, conv and FC carry
// parameters, softmax deliberately stays outside (its backward only exists
// fused with the loss).
func TestTrainingInterfaceCompliance(t *testing.T) {
	var _ BackwardLayer = (*Conv)(nil)
	var _ BackwardLayer = (*Pool)(nil)
	var _ BackwardLayer = (*ReLU)(nil)
	var _ BackwardLayer = (*FullyConnected)(nil)
	var _ BackwardLayer = (*LRN)(nil)
	var _ TrainableLayer = (*Conv)(nil)
	var _ TrainableLayer = (*FullyConnected)(nil)
	if _, ok := interface{}(&Softmax{}).(BackwardLayer); ok {
		t.Fatal("softmax must not implement BackwardLayer: its backward is fused into the loss gradient")
	}
	if _, ok := interface{}(&Pool{}).(TrainableLayer); ok {
		t.Fatal("pool has no parameters and must not be trainable")
	}
}
