package layers

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"memcnn/internal/kernels"
	"memcnn/internal/tensor"
)

// Training extensions of Layer.  The convolution, pooling, ReLU and softmax
// gradient kernels live in internal/kernels next to their forward kernels;
// the layers adapt them (and their own parameters) behind two uniform
// interfaces so the training compiler (internal/runtime/train) and the device
// dispatch (internal/runtime) need no per-layer knowledge.  All methods are
// allocation-free and bit-deterministic for any worker count: parallel passes
// split work by an atomic row counter and every output element is written by
// exactly one worker in a fixed accumulation order.

// BackwardLayer is implemented by layers that can propagate a gradient to
// their input.  Softmax deliberately does not implement it: its backward is
// only meaningful fused with the cross-entropy loss, which the training
// compiler lowers as a dedicated loss-gradient op
// (kernels.SoftmaxCrossEntropyBackward).
type BackwardLayer interface {
	Layer
	// BackwardDataInto computes d(loss)/d(input) into dIn from the incoming
	// gradient dOut and the layer's forward input in (which layers that do
	// not need their forward activation ignore).  scratch must hold at least
	// BackwardWorkspaceElems() elements for layers that report a non-zero
	// workspace; others ignore it.  dIn is fully overwritten.
	BackwardDataInto(in, dOut, dIn *tensor.Tensor, scratch []float32) error
	// BackwardWorkspaceElems returns the scratch BackwardDataInto needs, in
	// float32 elements (zero for most layers).
	BackwardWorkspaceElems() int
}

// TrainableLayer is implemented by layers with parameters: they additionally
// compute a parameter gradient and apply an SGD step to their (clone-shared)
// parameter storage.
type TrainableLayer interface {
	BackwardLayer
	// GradShape is the logical shape of the parameter-gradient tensor.
	GradShape() tensor.Shape
	// BackwardFilterInto computes d(loss)/d(params) into dW (shape GradShape)
	// from the layer's forward input and the incoming gradient.
	BackwardFilterInto(in, dOut, dW *tensor.Tensor) error
	// ApplySGD updates the parameters in place: W -= lr · dW.  Parameters are
	// shared across rebatched clones, so the update is visible through every
	// view of the layer.  Not safe concurrently with forward passes over the
	// same parameter storage.
	ApplySGD(dW *tensor.Tensor, lr float32) error
}

// backwardPlanes mirrors the kernels package's plane-counter parallelism for
// the layer-owned backward passes.
func backwardPlanes(planes int, work func(p int)) {
	var next atomic.Int64
	drain := func() {
		for {
			p := next.Add(1) - 1
			if p >= int64(planes) {
				return
			}
			work(int(p))
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || planes <= 1 {
		drain()
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			drain()
		}()
	}
	wg.Wait()
}

// BackwardDataInto implements BackwardLayer: the input gradient depends only
// on the incoming gradient and the filter bank, so the forward input is
// ignored.
func (c *Conv) BackwardDataInto(_, dOut, dIn *tensor.Tensor, _ []float32) error {
	return kernels.ConvBackwardDataInto(dOut, c.Filters(), dIn, c.Cfg)
}

// BackwardWorkspaceElems implements BackwardLayer.
func (c *Conv) BackwardWorkspaceElems() int { return 0 }

// GradShape implements TrainableLayer: the filter bank's K×C×FH×FW shape.
func (c *Conv) GradShape() tensor.Shape { return c.Cfg.FilterShape() }

// BackwardFilterInto implements TrainableLayer.
func (c *Conv) BackwardFilterInto(in, dOut, dW *tensor.Tensor) error {
	return kernels.ConvBackwardFilterInto(in, dOut, dW, c.Cfg)
}

// ApplySGD implements TrainableLayer: the filter bank (shared across
// rebatched clones) is updated in place, and the packed GEMM operand — if a
// GEMM program materialised it — is refreshed so subsequent GEMM forwards see
// the new weights.
func (c *Conv) ApplySGD(dW *tensor.Tensor, lr float32) error {
	filters := c.Filters()
	if dW.Shape != filters.Shape {
		return fmt.Errorf("layers: %s: sgd dW shape %v, want %v", c.LayerName, dW.Shape, filters.Shape)
	}
	if dW.Layout == filters.Layout {
		for i, g := range dW.Data {
			filters.Data[i] -= lr * g
		}
	} else {
		s := filters.Shape
		for k := 0; k < s.N; k++ {
			for ch := 0; ch < s.C; ch++ {
				for fh := 0; fh < s.H; fh++ {
					for fw := 0; fw < s.W; fw++ {
						filters.Set(k, ch, fh, fw, filters.At(k, ch, fh, fw)-lr*dW.At(k, ch, fh, fw))
					}
				}
			}
		}
	}
	c.refreshPacked()
	return nil
}

// BackwardDataInto implements BackwardLayer: max pooling routes each gradient
// to its window's argmax in the forward input, average pooling spreads it.
func (p *Pool) BackwardDataInto(in, dOut, dIn *tensor.Tensor, _ []float32) error {
	return kernels.PoolBackwardInto(in, dOut, dIn, p.Cfg)
}

// BackwardWorkspaceElems implements BackwardLayer.
func (p *Pool) BackwardWorkspaceElems() int { return 0 }

// BackwardDataInto implements BackwardLayer: the gradient is masked by the
// sign of the forward input.
func (r *ReLU) BackwardDataInto(in, dOut, dIn *tensor.Tensor, _ []float32) error {
	return kernels.ReLUBackwardInto(in, dOut, dIn)
}

// BackwardWorkspaceElems implements BackwardLayer.
func (r *ReLU) BackwardWorkspaceElems() int { return 0 }

// BackwardDataInto implements BackwardLayer: dIn[n][k] = Σ_o dOut[n][o] ·
// W[o][k].  The input gradient depends only on the weights, so the forward
// input is ignored.  Each image row is computed by one worker, so the result
// is bit-deterministic for any worker count.
func (f *FullyConnected) BackwardDataInto(_, dOut, dIn *tensor.Tensor, _ []float32) error {
	if dOut.Shape != f.OutputShape() {
		return fmt.Errorf("layers: %s: backward dOut shape %v, want %v", f.LayerName, dOut.Shape, f.OutputShape())
	}
	if dIn.Shape.Elems() != f.InputShape().Elems() || dIn.Shape.N != f.Batch {
		return fmt.Errorf("layers: %s: backward dIn shape %v incompatible with %v", f.LayerName, dIn.Shape, f.InputShape())
	}
	w := f.Weights()
	fast := dOut.Layout == tensor.NCHW && dIn.Layout == tensor.NCHW
	backwardPlanes(f.Batch, func(n int) {
		if fast {
			gRow := dOut.Data[n*f.OutDim : (n+1)*f.OutDim]
			dRow := dIn.Data[n*f.InDim : (n+1)*f.InDim]
			for k := 0; k < f.InDim; k++ {
				var acc float64
				for o, g := range gRow {
					acc += float64(g) * float64(w[o*f.InDim+k])
				}
				dRow[k] = float32(acc)
			}
			return
		}
		for k := 0; k < f.InDim; k++ {
			var acc float64
			for o := 0; o < f.OutDim; o++ {
				acc += float64(dOut.At(n, o, 0, 0)) * float64(w[o*f.InDim+k])
			}
			dIn.Set(n, k, 0, 0, float32(acc))
		}
	})
	return nil
}

// BackwardWorkspaceElems implements BackwardLayer.
func (f *FullyConnected) BackwardWorkspaceElems() int { return 0 }

// GradShape implements TrainableLayer: the OutDim×InDim weight matrix carried
// N×C×1×1 like the weights themselves.
func (f *FullyConnected) GradShape() tensor.Shape {
	return tensor.Shape{N: f.OutDim, C: f.InDim, H: 1, W: 1}
}

// BackwardFilterInto implements TrainableLayer: dW[o][k] = Σ_n dOut[n][o] ·
// in[n][k], with `in` the flattened feature matrix the forward pass consumed.
// Each weight row is accumulated by one worker over the batch in a fixed
// order; the fast path keeps a float64 accumulator row pattern equivalent to
// the generic one (per-element float64 adds in n order), so both paths agree
// bit for bit.
func (f *FullyConnected) BackwardFilterInto(in, dOut, dW *tensor.Tensor) error {
	if in.Shape.Elems() != f.InputShape().Elems() || in.Shape.N != f.Batch {
		return fmt.Errorf("layers: %s: backward input shape %v incompatible with %v", f.LayerName, in.Shape, f.InputShape())
	}
	if dOut.Shape != f.OutputShape() {
		return fmt.Errorf("layers: %s: backward dOut shape %v, want %v", f.LayerName, dOut.Shape, f.OutputShape())
	}
	if dW.Shape != f.GradShape() {
		return fmt.Errorf("layers: %s: backward dW shape %v, want %v", f.LayerName, dW.Shape, f.GradShape())
	}
	fast := in.Layout == tensor.NCHW && dOut.Layout == tensor.NCHW && dW.Layout == tensor.NCHW
	backwardPlanes(f.OutDim, func(o int) {
		if fast {
			wRow := dW.Data[o*f.InDim : (o+1)*f.InDim]
			for k := range wRow {
				var acc float64
				for n := 0; n < f.Batch; n++ {
					acc += float64(dOut.Data[n*f.OutDim+o]) * float64(in.Data[n*f.InDim+k])
				}
				wRow[k] = float32(acc)
			}
			return
		}
		for k := 0; k < f.InDim; k++ {
			var acc float64
			for n := 0; n < f.Batch; n++ {
				acc += float64(dOut.At(n, o, 0, 0)) * float64(in.At(n, k, 0, 0))
			}
			dW.Set(o, k, 0, 0, float32(acc))
		}
	})
	return nil
}

// ApplySGD implements TrainableLayer: the weight matrix (shared across
// rebatched clones through one backing slice) is updated in place.
func (f *FullyConnected) ApplySGD(dW *tensor.Tensor, lr float32) error {
	if dW.Shape != f.GradShape() {
		return fmt.Errorf("layers: %s: sgd dW shape %v, want %v", f.LayerName, dW.Shape, f.GradShape())
	}
	w := f.Weights()
	if dW.Layout == tensor.NCHW {
		for i, g := range dW.Data {
			w[i] -= lr * g
		}
		return nil
	}
	for o := 0; o < f.OutDim; o++ {
		for k := 0; k < f.InDim; k++ {
			w[o*f.InDim+k] -= lr * dW.At(o, k, 0, 0)
		}
	}
	return nil
}

// BackwardWorkspaceElems implements BackwardLayer: two per-channel staging
// rows.
func (l *LRN) BackwardWorkspaceElems() int { return 2 * l.Shape.C }

// BackwardDataInto implements BackwardLayer.  With y_i = x_i · s_i^{-β} and
// s_i = 1 + (α/size)·Σ_{j∈win(i)} x_j², the gradient is
//
//	dX_j = dY_j · s_j^{-β} - (2αβ/size) · x_j · Σ_{i: j∈win(i)} dY_i · x_i · s_i^{-β-1}
//
// and window membership is symmetric, so the same clamped window serves both
// directions.  The scratch stages the per-channel s^{-β} and dY·x·s^{-β-1}
// rows; the pass is sequential in a fixed order, so it is trivially
// bit-deterministic.
func (l *LRN) BackwardDataInto(in, dOut, dIn *tensor.Tensor, scratch []float32) error {
	if in.Shape != l.Shape {
		return fmt.Errorf("layers: %s: backward input shape %v, want %v", l.LayerName, in.Shape, l.Shape)
	}
	if dOut.Shape != l.Shape {
		return fmt.Errorf("layers: %s: backward dOut shape %v, want %v", l.LayerName, dOut.Shape, l.Shape)
	}
	if dIn.Shape != l.Shape {
		return fmt.Errorf("layers: %s: backward dIn shape %v, want %v", l.LayerName, dIn.Shape, l.Shape)
	}
	if len(scratch) < l.BackwardWorkspaceElems() {
		return fmt.Errorf("layers: %s: scratch has %d elements, want at least %d", l.LayerName, len(scratch), l.BackwardWorkspaceElems())
	}
	half := l.LocalSize / 2
	C := l.Shape.C
	pow, prod := scratch[:C], scratch[C:2*C]
	coef := 2 * l.Alpha * l.Beta / float64(l.LocalSize)
	for n := 0; n < l.Shape.N; n++ {
		for h := 0; h < l.Shape.H; h++ {
			for w := 0; w < l.Shape.W; w++ {
				for c := 0; c < C; c++ {
					lo, hi := c-half, c+half
					if lo < 0 {
						lo = 0
					}
					if hi >= C {
						hi = C - 1
					}
					var sq float64
					for cc := lo; cc <= hi; cc++ {
						v := float64(in.At(n, cc, h, w))
						sq += v * v
					}
					s := 1 + l.Alpha/float64(l.LocalSize)*sq
					sInv := math.Pow(s, -l.Beta-1)
					pow[c] = float32(sInv * s) // s^{-β}
					prod[c] = float32(float64(dOut.At(n, c, h, w)) * float64(in.At(n, c, h, w)) * sInv)
				}
				for c := 0; c < C; c++ {
					lo, hi := c-half, c+half
					if lo < 0 {
						lo = 0
					}
					if hi >= C {
						hi = C - 1
					}
					var acc float64
					for cc := lo; cc <= hi; cc++ {
						acc += float64(prod[cc])
					}
					g := float64(dOut.At(n, c, h, w))*float64(pow[c]) - coef*float64(in.At(n, c, h, w))*acc
					dIn.Set(n, c, h, w, float32(g))
				}
			}
		}
	}
	return nil
}
