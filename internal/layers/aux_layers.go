package layers

import (
	"fmt"
	"math"
	"sync"

	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/tensor"
)

// Softmax is the classifier layer; its input and output are logically
// N×Classes matrices carried as N×C×1×1 tensors.
type Softmax struct {
	LayerName string
	Cfg       kernels.SoftmaxConfig
}

// NewSoftmax builds a softmax layer.
func NewSoftmax(name string, cfg kernels.SoftmaxConfig) (*Softmax, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Softmax{LayerName: name, Cfg: cfg}, nil
}

// Name implements Layer.
func (s *Softmax) Name() string { return s.LayerName }

// InputShape implements Layer.
func (s *Softmax) InputShape() tensor.Shape {
	return tensor.Shape{N: s.Cfg.N, C: s.Cfg.Classes, H: 1, W: 1}
}

// OutputShape implements Layer.
func (s *Softmax) OutputShape() tensor.Shape { return s.InputShape() }

// SupportsLayout implements Layer.  With H = W = 1 the NCHW and CHWN
// linearisations are the only two distinct ones the libraries use; the kernel
// cost does not depend on which, so both are accepted.
func (s *Softmax) SupportsLayout(l tensor.Layout) bool {
	return l == tensor.CHWN || l == tensor.NCHW
}

// WithBatch implements Rebatcher: the classifier is stateless, so the clone
// only changes the batch dimension.
func (s *Softmax) WithBatch(batch int) (Layer, error) {
	cfg := s.Cfg
	cfg.N = batch
	return NewSoftmax(s.LayerName, cfg)
}

// Cost implements Layer.
func (s *Softmax) Cost(d *gpusim.Device, l tensor.Layout, opts CostOptions) ([]gpusim.KernelStats, error) {
	if !s.SupportsLayout(l) {
		return nil, fmt.Errorf("layers: %s: unsupported layout %v", s.LayerName, l)
	}
	return []gpusim.KernelStats{kernels.SoftmaxCost(d, s.Cfg, opts.Softmax)}, nil
}

// Forward implements Layer.
func (s *Softmax) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := tensor.New(s.OutputShape(), in.Layout)
	if err := s.ForwardInto(in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ForwardInto implements IntoForwarder, allocating the logit scratch itself.
func (s *Softmax) ForwardInto(in, dst *tensor.Tensor) error {
	return s.ForwardIntoWorkspace(in, dst, make([]float32, s.WorkspaceElems()))
}

// WorkspaceElems implements WorkspaceForwarder: staging room for the logit
// and probability matrices (each skipped when the corresponding tensor is
// already in the canonical NCHW linearisation).
func (s *Softmax) WorkspaceElems() int { return 2 * s.Cfg.Elems() }

// ForwardIntoWorkspace implements WorkspaceForwarder.
func (s *Softmax) ForwardIntoWorkspace(in, dst *tensor.Tensor, scratch []float32) error {
	if in.Shape != s.InputShape() {
		return fmt.Errorf("layers: %s: input shape %v, want %v", s.LayerName, in.Shape, s.InputShape())
	}
	if dst.Shape != s.OutputShape() {
		return fmt.Errorf("layers: %s: output shape %v, want %v", s.LayerName, dst.Shape, s.OutputShape())
	}
	if len(scratch) < s.WorkspaceElems() {
		return fmt.Errorf("layers: %s: scratch has %d elements, want at least %d", s.LayerName, len(scratch), s.WorkspaceElems())
	}
	elems := s.Cfg.Elems()
	// With N×C×1×1 shapes the NCHW backing slice is the row-major logit
	// matrix itself; other layouts stage through the scratch.
	logits := in.Data
	if in.Layout != tensor.NCHW {
		logits = scratch[:elems]
		for n := 0; n < s.Cfg.N; n++ {
			for c := 0; c < s.Cfg.Classes; c++ {
				logits[n*s.Cfg.Classes+c] = in.At(n, c, 0, 0)
			}
		}
	}
	probs := dst.Data
	if dst.Layout != tensor.NCHW {
		probs = scratch[elems : 2*elems]
	}
	if err := kernels.SoftmaxInto(probs, logits, s.Cfg); err != nil {
		return err
	}
	if dst.Layout != tensor.NCHW {
		for n := 0; n < s.Cfg.N; n++ {
			for c := 0; c < s.Cfg.Classes; c++ {
				dst.Set(n, c, 0, 0, probs[n*s.Cfg.Classes+c])
			}
		}
	}
	return nil
}

// FullyConnected is a dense layer computing Out = In × Wᵀ for a batch of
// flattened feature vectors.  Both libraries implement it as a matrix
// multiplication regardless of the activation layout, so its cost is layout
// independent — it only matters for whole-network totals.
type FullyConnected struct {
	LayerName string
	Batch     int
	InDim     int
	OutDim    int
	Seed      uint64

	// parent, when non-nil, is the layer this one was rebatched from: the
	// weight matrix is adopted from it on first use instead of regenerated,
	// so every rebatched clone shares one weight set.
	parent *FullyConnected

	weightsOnce sync.Once
	weights     []float32
}

// NewFullyConnected builds a dense layer.
func NewFullyConnected(name string, batch, inDim, outDim int, seed uint64) (*FullyConnected, error) {
	if batch <= 0 || inDim <= 0 || outDim <= 0 {
		return nil, fmt.Errorf("layers: fully-connected dims must be positive (batch=%d in=%d out=%d)", batch, inDim, outDim)
	}
	return &FullyConnected{LayerName: name, Batch: batch, InDim: inDim, OutDim: outDim, Seed: seed}, nil
}

// Name implements Layer.
func (f *FullyConnected) Name() string { return f.LayerName }

// InputShape implements Layer.
func (f *FullyConnected) InputShape() tensor.Shape {
	return tensor.Shape{N: f.Batch, C: f.InDim, H: 1, W: 1}
}

// OutputShape implements Layer.
func (f *FullyConnected) OutputShape() tensor.Shape {
	return tensor.Shape{N: f.Batch, C: f.OutDim, H: 1, W: 1}
}

// SupportsLayout implements Layer.
func (f *FullyConnected) SupportsLayout(l tensor.Layout) bool {
	return l == tensor.CHWN || l == tensor.NCHW
}

// WithBatch implements Rebatcher: the clone multiplies by the receiver's
// weight matrix (shared lazily through the parent link, not regenerated), so
// per-image results are bit-identical at any batch size.
func (f *FullyConnected) WithBatch(batch int) (Layer, error) {
	nf, err := NewFullyConnected(f.LayerName, batch, f.InDim, f.OutDim, f.Seed)
	if err != nil {
		return nil, err
	}
	nf.parent = f
	return nf, nil
}

// Cost implements Layer: one SGEMM of (OutDim × InDim) by (InDim × Batch).
func (f *FullyConnected) Cost(d *gpusim.Device, l tensor.Layout, _ CostOptions) ([]gpusim.KernelStats, error) {
	if !f.SupportsLayout(l) {
		return nil, fmt.Errorf("layers: %s: unsupported layout %v", f.LayerName, l)
	}
	s := kernels.GemmCost(d, kernels.GemmCostConfig{M: f.OutDim, N: f.Batch, K: f.InDim})
	s.Name = fmt.Sprintf("fc %s %dx%d", f.LayerName, f.InDim, f.OutDim)
	return []gpusim.KernelStats{s}, nil
}

// Weights returns (generating on first use) the deterministic weight matrix,
// row-major OutDim×InDim — adopted from the rebatch parent when there is
// one.  Generation is once-guarded so concurrent executor instances can
// share the layer.
func (f *FullyConnected) Weights() []float32 {
	f.weightsOnce.Do(func() {
		if f.parent != nil {
			f.weights = f.parent.Weights()
			return
		}
		t := tensor.Random(tensor.Shape{N: f.OutDim, C: f.InDim, H: 1, W: 1}, tensor.NCHW, f.Seed)
		f.weights = t.Data
	})
	return f.weights
}

// Forward implements Layer.
func (f *FullyConnected) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := tensor.New(f.OutputShape(), in.Layout)
	if err := f.ForwardInto(in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ForwardInto implements IntoForwarder, allocating the flatten scratch
// itself.
func (f *FullyConnected) ForwardInto(in, dst *tensor.Tensor) error {
	return f.ForwardIntoWorkspace(in, dst, make([]float32, f.WorkspaceElems()))
}

// WorkspaceElems implements WorkspaceForwarder: staging room for the
// flattened feature matrix (skipped when the input is already in the
// canonical NCHW linearisation).
func (f *FullyConnected) WorkspaceElems() int { return f.Batch * f.InDim }

// ForwardIntoWorkspace implements WorkspaceForwarder.
func (f *FullyConnected) ForwardIntoWorkspace(in, dst *tensor.Tensor, scratch []float32) error {
	want := f.InputShape()
	if in.Shape.Elems() != want.Elems() || in.Shape.N != f.Batch {
		return fmt.Errorf("layers: %s: input shape %v incompatible with %v", f.LayerName, in.Shape, want)
	}
	if dst.Shape != f.OutputShape() {
		return fmt.Errorf("layers: %s: output shape %v, want %v", f.LayerName, dst.Shape, f.OutputShape())
	}
	if len(scratch) < f.WorkspaceElems() {
		return fmt.Errorf("layers: %s: scratch has %d elements, want at least %d", f.LayerName, len(scratch), f.WorkspaceElems())
	}
	// Flatten each image's features in canonical (C,H,W) order.  An NCHW
	// backing slice already is that flattening, so no staging copy is needed.
	flat := in.Data
	if in.Layout != tensor.NCHW {
		flat = scratch[:f.Batch*f.InDim]
		idx := 0
		for n := 0; n < in.Shape.N; n++ {
			for c := 0; c < in.Shape.C; c++ {
				for h := 0; h < in.Shape.H; h++ {
					for w := 0; w < in.Shape.W; w++ {
						flat[idx] = in.At(n, c, h, w)
						idx++
					}
				}
			}
		}
	}
	// dst[n][o] = sum_k W[o][k] * flat[n][k]; computed as W (Out×In) times
	// flatᵀ (In×Batch) by iterating images.
	w := f.Weights()
	for n := 0; n < f.Batch; n++ {
		row := flat[n*f.InDim : (n+1)*f.InDim]
		for o := 0; o < f.OutDim; o++ {
			var acc float64
			wRow := w[o*f.InDim : (o+1)*f.InDim]
			for k, v := range row {
				acc += float64(v) * float64(wRow[k])
			}
			dst.Set(n, o, 0, 0, float32(acc))
		}
	}
	return nil
}

// ReLU is the element-wise rectifier.  It is purely bandwidth bound and
// layout agnostic; it participates in whole-network totals only.
type ReLU struct {
	LayerName string
	Shape     tensor.Shape
}

// NewReLU builds a ReLU layer.
func NewReLU(name string, shape tensor.Shape) (*ReLU, error) {
	if !shape.Valid() {
		return nil, fmt.Errorf("layers: relu shape %v invalid", shape)
	}
	return &ReLU{LayerName: name, Shape: shape}, nil
}

// Name implements Layer.
func (r *ReLU) Name() string { return r.LayerName }

// InputShape implements Layer.
func (r *ReLU) InputShape() tensor.Shape { return r.Shape }

// OutputShape implements Layer.
func (r *ReLU) OutputShape() tensor.Shape { return r.Shape }

// SupportsLayout implements Layer.
func (r *ReLU) SupportsLayout(tensor.Layout) bool { return true }

// WithBatch implements Rebatcher: the rectifier is stateless, so the clone
// only changes the batch dimension.
func (r *ReLU) WithBatch(batch int) (Layer, error) {
	shape := r.Shape
	shape.N = batch
	return NewReLU(r.LayerName, shape)
}

// Cost implements Layer: one streaming pass, read + write.
func (r *ReLU) Cost(d *gpusim.Device, _ tensor.Layout, _ CostOptions) ([]gpusim.KernelStats, error) {
	bytes := float64(r.Shape.Bytes())
	return []gpusim.KernelStats{{
		Name:              "relu " + r.LayerName,
		GridBlocks:        ceil(r.Shape.Elems(), 256),
		Block:             gpusim.BlockResources{ThreadsPerBlock: 256, RegsPerThread: 16},
		Launches:          1,
		FLOPs:             float64(r.Shape.Elems()),
		ComputeEfficiency: 1,
		DRAMReadBytes:     bytes,
		DRAMWriteBytes:    bytes,
		UsefulReadBytes:   bytes,
		UsefulWriteBytes:  bytes,
	}}, nil
}

// Forward implements Layer.
func (r *ReLU) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := tensor.New(r.Shape, in.Layout)
	if err := r.ForwardInto(in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ForwardsInPlace implements InPlaceForwarder: the same-layout path reads
// each element exactly once, at the index it writes, so dst may alias in
// under any layout.
func (r *ReLU) ForwardsInPlace(tensor.Layout) bool { return true }

// ForwardInto implements IntoForwarder.  The rectifier is element-wise, so
// when input and output share a layout it is a single linear pass over the
// backing slices.
func (r *ReLU) ForwardInto(in, dst *tensor.Tensor) error {
	if in.Shape != r.Shape {
		return fmt.Errorf("layers: %s: input shape %v, want %v", r.LayerName, in.Shape, r.Shape)
	}
	if dst.Shape != r.Shape {
		return fmt.Errorf("layers: %s: output shape %v, want %v", r.LayerName, dst.Shape, r.Shape)
	}
	if in.Layout == dst.Layout {
		for i, v := range in.Data {
			if v < 0 {
				v = 0
			}
			dst.Data[i] = v
		}
		return nil
	}
	s := r.Shape
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					v := in.At(n, c, h, w)
					if v < 0 {
						v = 0
					}
					dst.Set(n, c, h, w, v)
				}
			}
		}
	}
	return nil
}

// LRN is the local response normalisation layer used by AlexNet: each value
// is divided by a function of the sum of squares of its channel neighbours.
type LRN struct {
	LayerName string
	Shape     tensor.Shape
	LocalSize int
	Alpha     float64
	Beta      float64
}

// NewLRN builds an LRN layer with AlexNet's default parameters when alpha or
// beta are zero.
func NewLRN(name string, shape tensor.Shape, localSize int, alpha, beta float64) (*LRN, error) {
	if !shape.Valid() {
		return nil, fmt.Errorf("layers: lrn shape %v invalid", shape)
	}
	if localSize <= 0 {
		return nil, fmt.Errorf("layers: lrn local size must be positive")
	}
	if alpha == 0 {
		alpha = 1e-4
	}
	if beta == 0 {
		beta = 0.75
	}
	return &LRN{LayerName: name, Shape: shape, LocalSize: localSize, Alpha: alpha, Beta: beta}, nil
}

// Name implements Layer.
func (l *LRN) Name() string { return l.LayerName }

// InputShape implements Layer.
func (l *LRN) InputShape() tensor.Shape { return l.Shape }

// OutputShape implements Layer.
func (l *LRN) OutputShape() tensor.Shape { return l.Shape }

// SupportsLayout implements Layer.
func (l *LRN) SupportsLayout(tensor.Layout) bool { return true }

// WithBatch implements Rebatcher: normalisation is stateless, so the clone
// only changes the batch dimension.
func (l *LRN) WithBatch(batch int) (Layer, error) {
	shape := l.Shape
	shape.N = batch
	return NewLRN(l.LayerName, shape, l.LocalSize, l.Alpha, l.Beta)
}

// Cost implements Layer: the cross-channel window makes it read the
// neighbourhood of every element; part of the re-reads hit in cache.
func (l *LRN) Cost(d *gpusim.Device, _ tensor.Layout, _ CostOptions) ([]gpusim.KernelStats, error) {
	bytes := float64(l.Shape.Bytes())
	return []gpusim.KernelStats{{
		Name:              "lrn " + l.LayerName,
		GridBlocks:        ceil(l.Shape.Elems(), 256),
		Block:             gpusim.BlockResources{ThreadsPerBlock: 256, RegsPerThread: 32},
		Launches:          1,
		FLOPs:             float64(l.Shape.Elems()) * float64(2*l.LocalSize+10),
		ComputeEfficiency: 0.4,
		DRAMReadBytes:     bytes * 2,
		DRAMWriteBytes:    bytes,
		UsefulReadBytes:   bytes,
		UsefulWriteBytes:  bytes,
	}}, nil
}

// Forward implements Layer.
func (l *LRN) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := tensor.New(l.Shape, in.Layout)
	if err := l.ForwardInto(in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ForwardInto implements IntoForwarder.  The cross-channel window reads a
// neighbourhood of the input for every output value, so dst must not alias
// in — which is why LRN deliberately does not implement InPlaceForwarder: an
// in-place run would square channels that were already normalised.
func (l *LRN) ForwardInto(in, dst *tensor.Tensor) error {
	if in.Shape != l.Shape {
		return fmt.Errorf("layers: %s: input shape %v, want %v", l.LayerName, in.Shape, l.Shape)
	}
	if dst.Shape != l.Shape {
		return fmt.Errorf("layers: %s: output shape %v, want %v", l.LayerName, dst.Shape, l.Shape)
	}
	half := l.LocalSize / 2
	for n := 0; n < l.Shape.N; n++ {
		for c := 0; c < l.Shape.C; c++ {
			lo, hi := c-half, c+half
			if lo < 0 {
				lo = 0
			}
			if hi >= l.Shape.C {
				hi = l.Shape.C - 1
			}
			for h := 0; h < l.Shape.H; h++ {
				for w := 0; w < l.Shape.W; w++ {
					var sq float64
					for cc := lo; cc <= hi; cc++ {
						v := float64(in.At(n, cc, h, w))
						sq += v * v
					}
					scale := math.Pow(1+l.Alpha/float64(l.LocalSize)*sq, -l.Beta)
					dst.Set(n, c, h, w, float32(float64(in.At(n, c, h, w))*scale))
				}
			}
		}
	}
	return nil
}

func ceil(a, b int) int {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}
