// Package layers provides the CNN layer abstraction that networks are built
// from: convolution, pooling, softmax, fully-connected, ReLU and LRN layers.
// Every layer offers
//
//   - a functional forward pass (used by the examples and correctness tests)
//   - a GPU cost query for a given data layout and implementation choice,
//     returning the kernel sequence modelled by internal/kernels.
//
// The separation mirrors the paper's experimental set-up: the layer's values
// do not depend on layout or implementation, only its memory behaviour does.
package layers

import (
	"fmt"
	"sync"

	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/tensor"
)

// ConvImpl selects the convolution implementation used for a cost query.
type ConvImpl int

// Convolution implementation choices (Section II.B).
const (
	// ConvAuto picks the conventional implementation for the layout: direct
	// convolution for CHWN, the best available NCHW mode for NCHW.
	ConvAuto ConvImpl = iota
	// ConvDirectImpl is the cuda-convnet direct convolution (CHWN only).
	ConvDirectImpl
	// ConvGemmImpl is the Caffe/cuDNN im2col + GEMM mode (NCHW only).
	ConvGemmImpl
	// ConvFFTImpl is the cuDNN FFT mode (NCHW only); it can fail with
	// ErrOutOfMemory.
	ConvFFTImpl
	// ConvFFTTilingImpl is the cuDNN FFT-Tiling mode (NCHW only).
	ConvFFTTilingImpl
	// ConvBestNCHW cherry-picks the fastest NCHW mode that fits in memory,
	// the policy of the paper's "cuDNN-Best" configuration.
	ConvBestNCHW
)

// String names the implementation.
func (i ConvImpl) String() string {
	switch i {
	case ConvAuto:
		return "auto"
	case ConvDirectImpl:
		return "direct"
	case ConvGemmImpl:
		return "gemm"
	case ConvFFTImpl:
		return "fft"
	case ConvFFTTilingImpl:
		return "fft-tiling"
	case ConvBestNCHW:
		return "best-nchw"
	default:
		return fmt.Sprintf("ConvImpl(%d)", int(i))
	}
}

// PoolImpl selects the pooling implementation used for a cost query.
type PoolImpl int

// Pooling implementation choices.
const (
	// PoolPlain is the library kernel for the layout (cuda-convnet for CHWN,
	// Caffe/cuDNN for NCHW).
	PoolPlain PoolImpl = iota
	// PoolOptimized is the paper's register-reuse kernel (CHWN only); the
	// expansion factors come from CostOptions.PoolExpansion.
	PoolOptimized
	// PoolCuDNNVariant is the cuDNN NCHW kernel (adds the backward mask
	// write); used by the cuDNN framework emulation.
	PoolCuDNNVariant
)

// String names the implementation.
func (i PoolImpl) String() string {
	switch i {
	case PoolPlain:
		return "plain"
	case PoolOptimized:
		return "optimized"
	case PoolCuDNNVariant:
		return "cudnn"
	default:
		return fmt.Sprintf("PoolImpl(%d)", int(i))
	}
}

// CostOptions selects the implementation variants for a cost query.  The zero
// value is the conventional library behaviour for the layout.
type CostOptions struct {
	Conv          ConvImpl
	Pool          PoolImpl
	PoolExpansion kernels.PoolExpansion // zero value lets the layer pick 2x2
	Softmax       kernels.SoftmaxImpl
}

// Layer is one stage of a CNN.
type Layer interface {
	// Name identifies the layer inside its network (e.g. "conv1").
	Name() string
	// InputShape and OutputShape describe the logical tensors.
	InputShape() tensor.Shape
	OutputShape() tensor.Shape
	// SupportsLayout reports whether the layer has an implementation for the
	// given activation layout.
	SupportsLayout(l tensor.Layout) bool
	// Cost returns the GPU kernel sequence for executing the layer with the
	// given activation layout and implementation options.
	Cost(d *gpusim.Device, l tensor.Layout, opts CostOptions) ([]gpusim.KernelStats, error)
	// Forward computes the layer functionally.  The output keeps the input's
	// layout where that is meaningful.
	Forward(in *tensor.Tensor) (*tensor.Tensor, error)
}

// IntoForwarder is an optional extension of Layer implemented by layers that
// can write their forward result into a caller-provided output tensor of the
// layer's output shape.  The planned-execution engine (internal/runtime) uses
// it to run layers without per-request heap allocation; layers that do not
// implement it are executed through Forward followed by a copy into the
// planned buffer.  The output tensor must not alias the input unless the
// layer also implements InPlaceForwarder and reports the layout safe.
type IntoForwarder interface {
	ForwardInto(in, dst *tensor.Tensor) error
}

// InPlaceForwarder is an optional extension of IntoForwarder implemented by
// layers whose ForwardInto tolerates dst sharing storage with in.  The
// planned-execution engine then aliases the layer's output buffer onto its
// input, shrinking the arena: the op reads and writes the same storage.
// Element-wise layers (ReLU) qualify when input and output use the same
// layout — every element is read exactly once, at the index it is written.
// Layers with neighbourhood reads do not: LRN's cross-channel window would
// read channels already overwritten in place.
type InPlaceForwarder interface {
	IntoForwarder
	// ForwardsInPlace reports whether ForwardInto may run with dst aliasing
	// in when both tensors use the given layout.
	ForwardsInPlace(l tensor.Layout) bool
}

// WorkspaceForwarder is an optional extension of IntoForwarder implemented by
// layers whose forward pass needs scratch memory (the fully-connected flatten
// staging, the softmax logit matrix).  The planned-execution engine sizes the
// scratch at compile time and packs it into the arena as a buffer live only
// during the layer's op, so steady-state inference performs no heap
// allocation; the plain ForwardInto remains the standalone path and allocates
// the scratch itself.
type WorkspaceForwarder interface {
	IntoForwarder
	// WorkspaceElems returns the scratch size ForwardIntoWorkspace needs, in
	// float32 elements.
	WorkspaceElems() int
	// ForwardIntoWorkspace is ForwardInto with caller-provided scratch of at
	// least WorkspaceElems() elements.  The scratch contents are unspecified
	// on entry and trashed on return; the values written to dst are
	// bit-identical to ForwardInto's.
	ForwardIntoWorkspace(in, dst *tensor.Tensor, scratch []float32) error
}

// Rebatcher is an optional extension of Layer implemented by layers that can
// clone themselves at a different batch size.  The clone computes the same
// per-image function — weights (convolution filter banks, fully-connected
// weight matrices) are shared with the original, not regenerated — so a batch
// processed in slices across rebatched clones is bit-identical to the same
// batch processed whole: every layer handles images independently and fixes
// its per-image accumulation order regardless of batch size.  The
// data-parallel replica scheduler (internal/runtime/replica) uses it to
// compile per-replica sub-batch programs against one shared weight set.
type Rebatcher interface {
	// WithBatch returns a layer identical to the receiver except for the
	// batch dimension of its input and output shapes.
	WithBatch(batch int) (Layer, error)
}

// GemmForwarder is implemented by convolution layers that can execute the
// im2col+GEMM strategy (Section II.B) into caller-provided output and
// workspace.  The planned-execution engine selects direct vs GEMM per layer
// shape (internal/autotune), pre-packs the filter bank once at compile time
// via PackedFilters, plans the per-run workspace into its arena, and calls
// ForwardIntoGemm for ops whose recorded algorithm is kernels.ConvAlgGemm.
type GemmForwarder interface {
	// Config returns the convolution configuration the algorithm selection
	// heuristics operate on.
	Config() kernels.ConvConfig
	// PackedFilters returns the flat K×(C·FH·FW) GEMM operand, packing it on
	// first use.
	PackedFilters() []float32
	// GemmWorkspaceElems returns the scratch ForwardIntoGemm needs for the
	// given output layout, in float32 elements.
	GemmWorkspaceElems(outLayout tensor.Layout) int
	// ForwardIntoGemm runs the layer through the im2col+GEMM path, using the
	// caller-provided scratch (contents unspecified on entry).
	ForwardIntoGemm(in, dst *tensor.Tensor, scratch []float32) error
}

// FFTForwarder is implemented by convolution layers that can execute the
// frequency-domain strategy (Section IV.A) into caller-provided output and
// workspace.  The compiler plans the transform workspace — filter and channel
// spectra plus the accumulator planes — as an op-local arena scratch buffer
// and calls ForwardIntoFFT for ops whose recorded algorithm is
// kernels.ConvAlgFFT.  Unlike the GEMM path there is no pre-packed operand:
// the kernel transforms the filter bank out of the per-run scratch, so
// rebatched clones share weights with no extra compile-time state.
type FFTForwarder interface {
	// Config returns the convolution configuration the algorithm selection
	// heuristics operate on.
	Config() kernels.ConvConfig
	// FFTWorkspaceElems returns the scratch ForwardIntoFFT needs, in float32
	// elements.
	FFTWorkspaceElems() int
	// ForwardIntoFFT runs the layer through the FFT path, using the
	// caller-provided scratch (contents unspecified on entry).
	ForwardIntoFFT(in, dst *tensor.Tensor, scratch []float32) error
}

// Conv is a convolutional layer.
type Conv struct {
	LayerName string
	Cfg       kernels.ConvConfig
	// Seed generates the deterministic filter bank used by Forward.
	Seed uint64

	// parent, when non-nil, is the layer this one was rebatched from: the
	// filter bank (and its packed GEMM operand) is adopted from the parent on
	// first use instead of being regenerated, so every rebatched clone shares
	// one weight set.
	parent *Conv

	filtersOnce sync.Once
	filters     *tensor.Tensor
	packOnce    sync.Once
	packed      []float32
}

// NewConv builds a convolutional layer.
func NewConv(name string, cfg kernels.ConvConfig, seed uint64) (*Conv, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Conv{LayerName: name, Cfg: cfg, Seed: seed}, nil
}

// Name implements Layer.
func (c *Conv) Name() string { return c.LayerName }

// InputShape implements Layer.
func (c *Conv) InputShape() tensor.Shape { return c.Cfg.InputShape() }

// OutputShape implements Layer.
func (c *Conv) OutputShape() tensor.Shape { return c.Cfg.OutputShape() }

// SupportsLayout implements Layer: convolutions run in CHWN (direct) or NCHW
// (GEMM / FFT).
func (c *Conv) SupportsLayout(l tensor.Layout) bool {
	return l == tensor.CHWN || l == tensor.NCHW
}

// Filters returns (generating on first use) the layer's deterministic filter
// bank — adopted from the rebatch parent when there is one.  Generation is
// once-guarded so concurrent executor instances can share the layer.
func (c *Conv) Filters() *tensor.Tensor {
	c.filtersOnce.Do(func() {
		if c.parent != nil {
			c.filters = c.parent.Filters()
			return
		}
		c.filters = tensor.Filters(c.Cfg.K, c.Cfg.C, c.Cfg.FH, c.Cfg.FW, c.Seed)
	})
	return c.filters
}

// Config implements GemmForwarder.
func (c *Conv) Config() kernels.ConvConfig { return c.Cfg }

// PackedFilters implements GemmForwarder: the filter bank flattened once into
// the K×(C·FH·FW) GEMM operand — adopted from the rebatch parent when there
// is one (the packed layout does not depend on the batch size).
func (c *Conv) PackedFilters() []float32 {
	c.packOnce.Do(func() {
		if c.parent != nil {
			c.packed = c.parent.PackedFilters()
			return
		}
		packed, err := kernels.PackConvFilters(c.Filters(), c.Cfg)
		if err != nil {
			// NewConv validated the config and Filters matches it by
			// construction.
			panic("layers: " + err.Error())
		}
		c.packed = packed
	})
	return c.packed
}

// refreshPacked re-flattens the filter bank into the packed GEMM operand
// after an in-place weight update, writing over the existing slice so every
// rebatched clone sharing it sees the refresh.  A nil packed slice means no
// GEMM program ever materialised it, and there is nothing to refresh; the
// unsynchronised read is safe because ApplySGD's contract already forbids
// running training concurrently with forwards on the same layer.
func (c *Conv) refreshPacked() {
	if c.parent != nil {
		c.parent.refreshPacked()
		return
	}
	if c.packed == nil {
		return
	}
	filters := c.Filters()
	idx := 0
	for k := 0; k < c.Cfg.K; k++ {
		for ch := 0; ch < c.Cfg.C; ch++ {
			for fh := 0; fh < c.Cfg.FH; fh++ {
				for fw := 0; fw < c.Cfg.FW; fw++ {
					c.packed[idx] = filters.At(k, ch, fh, fw)
					idx++
				}
			}
		}
	}
}

// GemmWorkspaceElems implements GemmForwarder.
func (c *Conv) GemmWorkspaceElems(outLayout tensor.Layout) int {
	return kernels.ConvGemmWorkspaceElems(c.Cfg, outLayout)
}

// ForwardIntoGemm implements GemmForwarder.
func (c *Conv) ForwardIntoGemm(in, dst *tensor.Tensor, scratch []float32) error {
	return kernels.ConvIm2colGemmInto(in, c.PackedFilters(), dst, c.Cfg, scratch)
}

// FFTWorkspaceElems implements FFTForwarder.
func (c *Conv) FFTWorkspaceElems() int {
	return kernels.ConvFFTWorkspaceElems(c.Cfg)
}

// ForwardIntoFFT implements FFTForwarder.
func (c *Conv) ForwardIntoFFT(in, dst *tensor.Tensor, scratch []float32) error {
	return kernels.ConvFFTInto(in, c.Filters(), dst, c.Cfg, scratch)
}

// WithBatch implements Rebatcher: the clone convolves with the receiver's
// filter bank (shared lazily through the parent link, not regenerated —
// including the packed GEMM operand, which is only materialised if a GEMM
// program actually needs it), so per-image results are bit-identical at any
// batch size.
func (c *Conv) WithBatch(batch int) (Layer, error) {
	cfg := c.Cfg
	cfg.N = batch
	nc, err := NewConv(c.LayerName, cfg, c.Seed)
	if err != nil {
		return nil, err
	}
	nc.parent = c
	return nc, nil
}

// Cost implements Layer.
func (c *Conv) Cost(d *gpusim.Device, l tensor.Layout, opts CostOptions) ([]gpusim.KernelStats, error) {
	impl := opts.Conv
	switch l {
	case tensor.CHWN:
		if impl == ConvAuto {
			impl = ConvDirectImpl
		}
		if impl != ConvDirectImpl {
			return nil, fmt.Errorf("layers: %s: %v convolution is not available in the CHWN layout", c.LayerName, impl)
		}
		return []gpusim.KernelStats{kernels.ConvDirectCHWNCost(d, c.Cfg)}, nil
	case tensor.NCHW:
		if impl == ConvAuto {
			impl = ConvGemmImpl
		}
		switch impl {
		case ConvGemmImpl:
			return kernels.ConvGemmNCHWCost(d, c.Cfg), nil
		case ConvFFTImpl:
			return kernels.ConvFFTCost(d, c.Cfg)
		case ConvFFTTilingImpl:
			return kernels.ConvFFTTilingCost(d, c.Cfg)
		case ConvBestNCHW:
			return c.bestNCHW(d), nil
		default:
			return nil, fmt.Errorf("layers: %s: %v convolution is not available in the NCHW layout", c.LayerName, impl)
		}
	default:
		return nil, fmt.Errorf("layers: %s: unsupported layout %v", c.LayerName, l)
	}
}

// bestNCHW picks the fastest NCHW mode that fits in device memory, falling
// back to GEMM the way cuDNN falls back when an FFT mode fails.
func (c *Conv) bestNCHW(d *gpusim.Device) []gpusim.KernelStats {
	best := kernels.ConvGemmNCHWCost(d, c.Cfg)
	bestT, _ := gpusim.EstimateSequence(d, best)
	if fftSeq, err := kernels.ConvFFTCost(d, c.Cfg); err == nil {
		if t, _ := gpusim.EstimateSequence(d, fftSeq); t < bestT {
			best, bestT = fftSeq, t
		}
	}
	if fftT, err := kernels.ConvFFTTilingCost(d, c.Cfg); err == nil {
		if t, _ := gpusim.EstimateSequence(d, fftT); t < bestT {
			best, bestT = fftT, t
		}
	}
	return best
}

// Forward implements Layer using the direct convolution reference.
func (c *Conv) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return kernels.ConvDirect(in, c.Filters(), c.Cfg, in.Layout)
}

// ForwardInto implements IntoForwarder.
func (c *Conv) ForwardInto(in, dst *tensor.Tensor) error {
	return kernels.ConvDirectInto(in, c.Filters(), dst, c.Cfg)
}

// Pool is a pooling layer.
type Pool struct {
	LayerName string
	Cfg       kernels.PoolConfig
}

// NewPool builds a pooling layer.
func NewPool(name string, cfg kernels.PoolConfig) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Pool{LayerName: name, Cfg: cfg}, nil
}

// Name implements Layer.
func (p *Pool) Name() string { return p.LayerName }

// InputShape implements Layer.
func (p *Pool) InputShape() tensor.Shape { return p.Cfg.InputShape() }

// OutputShape implements Layer.
func (p *Pool) OutputShape() tensor.Shape { return p.Cfg.OutputShape() }

// SupportsLayout implements Layer.
func (p *Pool) SupportsLayout(l tensor.Layout) bool {
	return l == tensor.CHWN || l == tensor.NCHW
}

// WithBatch implements Rebatcher: pooling is stateless, so the clone only
// changes the batch dimension.
func (p *Pool) WithBatch(batch int) (Layer, error) {
	cfg := p.Cfg
	cfg.N = batch
	return NewPool(p.LayerName, cfg)
}

// Cost implements Layer.
func (p *Pool) Cost(d *gpusim.Device, l tensor.Layout, opts CostOptions) ([]gpusim.KernelStats, error) {
	switch l {
	case tensor.CHWN:
		switch opts.Pool {
		case PoolOptimized:
			e := opts.PoolExpansion
			if e.H <= 0 || e.W <= 0 {
				e = kernels.PoolExpansion{H: 2, W: 2}
			}
			return []gpusim.KernelStats{kernels.PoolCHWNCoarsenedCost(d, p.Cfg, e)}, nil
		case PoolCuDNNVariant:
			return nil, fmt.Errorf("layers: %s: the cuDNN pooling kernel uses the NCHW layout", p.LayerName)
		default:
			return []gpusim.KernelStats{kernels.PoolCHWNCost(d, p.Cfg)}, nil
		}
	case tensor.NCHW:
		variant := kernels.PoolCaffe
		if opts.Pool == PoolCuDNNVariant {
			variant = kernels.PoolCuDNN
		}
		if opts.Pool == PoolOptimized {
			return nil, fmt.Errorf("layers: %s: the optimised pooling kernel requires the CHWN layout", p.LayerName)
		}
		return []gpusim.KernelStats{kernels.PoolNCHWCost(d, p.Cfg, variant)}, nil
	default:
		return nil, fmt.Errorf("layers: %s: unsupported layout %v", p.LayerName, l)
	}
}

// Forward implements Layer.
func (p *Pool) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return kernels.Pool(in, p.Cfg)
}

// ForwardInto implements IntoForwarder.
func (p *Pool) ForwardInto(in, dst *tensor.Tensor) error {
	return kernels.PoolInto(in, dst, p.Cfg)
}
