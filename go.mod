module memcnn

go 1.21
