package memcnn_test

// Benchmark harness: one testing.B benchmark per table/figure of the paper's
// evaluation section.  Each benchmark regenerates its experiment from the GPU
// performance model and reports the headline quantity of that experiment as a
// custom metric, so `go test -bench=. -benchmem` reproduces the shape of the
// published results in one run.  See EXPERIMENTS.md for the side-by-side
// comparison with the published numbers.

import (
	"math"
	"testing"

	"memcnn/internal/autotune"
	"memcnn/internal/bench"
	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/layout"
	memruntime "memcnn/internal/runtime"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

func device() *gpusim.Device        { return gpusim.TitanBlack() }
func thresholds() layout.Thresholds { return layout.TitanBlackThresholds() }

// BenchmarkTable1Inventory enumerates the benchmark layer configurations.
func BenchmarkTable1Inventory(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		t := bench.Table1Inventory()
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "layers")
}

// BenchmarkFigure1 regenerates Fig. 1 (layout comparison on AlexNet layers).
func BenchmarkFigure1(b *testing.B) {
	d := device()
	var maxRatio float64
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Figure1(d)
		maxRatio = 0
		for _, r := range rows {
			if r.NCHWNormalized > maxRatio {
				maxRatio = r.NCHWNormalized
			}
		}
	}
	b.ReportMetric(maxRatio, "max_NCHW/CHWN")
}

// BenchmarkFigure3 regenerates Fig. 3 (layout comparison on Table 1 convolutions).
func BenchmarkFigure3(b *testing.B) {
	d := device()
	var chwnWins int
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Figure3(d)
		chwnWins = 0
		for _, r := range rows {
			if r.CHWNWins {
				chwnWins++
			}
		}
	}
	b.ReportMetric(float64(chwnWins), "CHWN_wins_of_12")
}

// BenchmarkFigure4N regenerates Fig. 4a (batch-size sensitivity).
func BenchmarkFigure4N(b *testing.B) {
	d := device()
	var peak float64
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Figure4N(d)
		peak = rows[len(rows)-1].CHWNGflops
	}
	b.ReportMetric(peak, "CHWN_GFLOPS@N=512")
}

// BenchmarkFigure4C regenerates Fig. 4b (channel-count sensitivity).
func BenchmarkFigure4C(b *testing.B) {
	d := device()
	var peak float64
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Figure4C(d)
		peak = rows[len(rows)-1].NCHWGflops
	}
	b.ReportMetric(peak, "NCHW_GFLOPS@C=256")
}

// BenchmarkFigure5 regenerates Fig. 5 (FFT-based convolution modes).
func BenchmarkFigure5(b *testing.B) {
	d := device()
	var oom int
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Figure5(d)
		oom = 0
		for _, r := range rows {
			if r.FFTOOM {
				oom++
			}
		}
	}
	b.ReportMetric(float64(oom), "FFT_OOM_layers")
}

// BenchmarkFigure6 regenerates Fig. 6 (pooling layout comparison).
func BenchmarkFigure6(b *testing.B) {
	d := device()
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Figure6(d)
		worst = 1
		for _, r := range rows {
			if r.CuDNNSpeedup < worst {
				worst = r.CuDNNSpeedup
			}
		}
	}
	b.ReportMetric(1/worst, "max_CHWN_speedup_vs_cuDNN")
}

// BenchmarkFigure10 regenerates Fig. 10 (layout benefit vs transform overhead).
func BenchmarkFigure10(b *testing.B) {
	d := device()
	var geomean float64
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Figure10(d)
		prod := 1.0
		for _, r := range rows {
			prod *= r.OptTransSpeedup
		}
		geomean = pow(prod, 1/float64(len(rows)))
	}
	b.ReportMetric(geomean, "gm_speedup_with_opt_transform")
}

// BenchmarkFigure11 regenerates Fig. 11 (transformation bandwidth).
func BenchmarkFigure11(b *testing.B) {
	d := device()
	var best float64
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Figure11(d)
		best = 0
		for _, r := range rows {
			if r.VecGBs > best {
				best = r.VecGBs
			}
		}
	}
	b.ReportMetric(best, "best_transform_GB/s")
}

// BenchmarkFigure12 regenerates Fig. 12 (optimised pooling).
func BenchmarkFigure12(b *testing.B) {
	d := device()
	var avg float64
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Figure12(d)
		sum := 0.0
		for _, r := range rows {
			sum += r.OptBandwidthGB
		}
		avg = sum / float64(len(rows))
	}
	b.ReportMetric(avg, "avg_opt_pool_GB/s")
}

// BenchmarkFigure13 regenerates Fig. 13 (softmax bandwidth).
func BenchmarkFigure13(b *testing.B) {
	d := device()
	var best float64
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Figure13(d)
		best = 0
		for _, r := range rows {
			if r.OptGBs > best {
				best = r.OptGBs
			}
		}
	}
	b.ReportMetric(best, "best_softmax_GB/s")
}

// BenchmarkFigure14 regenerates Fig. 14 (whole-network comparison).
func BenchmarkFigure14(b *testing.B) {
	d := device()
	th := thresholds()
	var lenetSpeedup float64
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.Figure14(d, th)
		if err != nil {
			b.Fatal(err)
		}
		lenetSpeedup = rows[0].Speedups["Opt"]
	}
	b.ReportMetric(lenetSpeedup, "LeNet_Opt_vs_cuDNN-MM")
}

// BenchmarkFigure15 regenerates Fig. 15 (AlexNet per-layer breakdown).
func BenchmarkFigure15(b *testing.B) {
	d := device()
	th := thresholds()
	var softmaxSpeedup float64
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.Figure15(d, th)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Layer == "prob" {
				softmaxSpeedup = r.OptSpeedup
			}
		}
	}
	b.ReportMetric(softmaxSpeedup, "softmax_Opt_vs_cuDNN")
}

// BenchmarkThresholdCalibration regenerates the (Ct, Nt) calibration.
func BenchmarkThresholdCalibration(b *testing.B) {
	var ct float64
	for i := 0; i < b.N; i++ {
		rows, _ := bench.ThresholdCalibration()
		ct = float64(rows[0].Calibrated.Ct)
	}
	b.ReportMetric(ct, "TitanBlack_Ct")
}

// BenchmarkTitanX regenerates the Section VI.C Titan X summary.
func BenchmarkTitanX(b *testing.B) {
	var vggOverCC float64
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.TitanXSummary()
		if err != nil {
			b.Fatal(err)
		}
		vggOverCC = rows[1].OverCudaConvnet
	}
	b.ReportMetric(vggOverCC, "VGG_Opt_vs_cuda-convnet")
}

// BenchmarkSoftmaxAblation regenerates the fusion/parallelisation ablation.
func BenchmarkSoftmaxAblation(b *testing.B) {
	d := device()
	var geomeanFusion float64
	for i := 0; i < b.N; i++ {
		rows, _ := bench.SoftmaxAblation(d)
		prod := 1.0
		for _, r := range rows {
			prod *= r.FusionSpeedup
		}
		geomeanFusion = pow(prod, 1/float64(len(rows)))
	}
	b.ReportMetric(geomeanFusion, "gm_fusion_speedup")
}

// BenchmarkPoolingAblation regenerates the auto-tuner ablation.
func BenchmarkPoolingAblation(b *testing.B) {
	d := device()
	var probes float64
	for i := 0; i < b.N; i++ {
		rows, _ := bench.PoolingAblation(d)
		probes = 0
		for _, r := range rows {
			probes += float64(r.TunedProbes)
		}
		probes /= float64(len(rows))
	}
	b.ReportMetric(probes, "avg_hillclimb_probes")
}

// BenchmarkTrainingStep prices complete forward-backward iterations of the
// Table 1 convolutions and checks the layout preference carries over to
// training (the paper's footnote 1 and its forward-backward profiling).
func BenchmarkTrainingStep(b *testing.B) {
	d := device()
	var agree float64
	for i := 0; i < b.N; i++ {
		rows, _ := bench.TrainingStep(d)
		agree = 0
		for _, r := range rows {
			if r.SamePreference {
				agree++
			}
		}
	}
	b.ReportMetric(agree, "same_preference_of_12")
}

// BenchmarkHeuristicAccuracy checks the heuristic against the model oracle.
func BenchmarkHeuristicAccuracy(b *testing.B) {
	d := device()
	th := thresholds()
	var agree float64
	for i := 0; i < b.N; i++ {
		rows, _ := bench.HeuristicAccuracy(d, th)
		agree = 0
		for _, r := range rows {
			if r.Agree {
				agree++
			}
		}
	}
	b.ReportMetric(agree, "agreements_of_12")
}

// BenchmarkInference compares the naive Network.Forward against the planned
// executor of internal/runtime on the same network and input: same values,
// different memory discipline.  The imgs/sec metrics track the functional
// throughput; allocs/op (run with -benchmem) shows the arena executor's
// steady-state allocation behaviour against the naive per-layer allocations.
func BenchmarkInference(b *testing.B) {
	net, err := workloads.TinyNet()
	if err != nil {
		b.Fatal(err)
	}
	in := tensor.Random(net.InputShape(), tensor.NCHW, 3)
	batch := float64(net.Batch)

	b.Run("Naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := net.Forward(in); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(batch*float64(b.N)/b.Elapsed().Seconds(), "imgs/sec")
	})

	b.Run("Planned", func(b *testing.B) {
		prog, err := memruntime.CompileFixed(net, tensor.NCHW)
		if err != nil {
			b.Fatal(err)
		}
		exec := memruntime.NewExecutor(prog)
		out := tensor.New(prog.OutputShape(), tensor.NCHW)
		if err := exec.RunInto(in, out); err != nil { // warm the arena pool
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := exec.RunInto(in, out); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(batch*float64(b.N)/b.Elapsed().Seconds(), "imgs/sec")
	})
}

// BenchmarkConvAlgorithms compares the three production convolution
// strategies of the planned runtime — direct, im2col+GEMM and FFT — across
// layer shapes from the paper's regimes, and reports which one the
// compile-time selector picks (selected metric).  The GEMM path must win
// clearly on the VGG/AlexNet-scale shapes, the direct path keeps tiny
// single-image layers cheap, and the FFT path takes the large-filter stride-1
// AlexNet conv2 shape; all three run allocation-free into pre-sized buffers,
// exactly as the executor drives them.
func BenchmarkConvAlgorithms(b *testing.B) {
	shapes := []struct {
		name string
		cfg  kernels.ConvConfig
		// skipDirect drops the direct sub-benchmark on shapes where the naive
		// kernel needs minutes per iteration; it is never the selected path
		// there, so the smoke run loses nothing.
		skipDirect bool
	}{
		{name: "1img-small", cfg: kernels.ConvConfig{N: 1, C: 3, H: 16, W: 16, K: 8, FH: 3, FW: 3, PadH: 1, PadW: 1}},
		{name: "cifar-conv2", cfg: kernels.ConvConfig{N: 32, C: 64, H: 12, W: 12, K: 64, FH: 5, FW: 5, PadH: 2, PadW: 2}},
		{name: "vgg-conv3_1", cfg: kernels.ConvConfig{N: 2, C: 128, H: 28, W: 28, K: 256, FH: 3, FW: 3, PadH: 1, PadW: 1}},
		{name: "alexnet-conv2@n32", cfg: kernels.ConvConfig{N: 32, C: 96, H: 27, W: 27, K: 256, FH: 5, FW: 5, PadH: 2, PadW: 2}, skipDirect: true},
	}
	for _, s := range shapes {
		cfg := s.cfg
		in := tensor.Random(cfg.InputShape(), tensor.NCHW, 1)
		filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 2)
		out := tensor.New(cfg.OutputShape(), tensor.NCHW)
		packed, err := kernels.PackConvFilters(filters, cfg)
		if err != nil {
			b.Fatal(err)
		}
		scratch := make([]float32, kernels.ConvGemmWorkspaceElems(cfg, tensor.NCHW))
		fftScratch := make([]float32, kernels.ConvFFTWorkspaceElems(cfg))
		gflop := cfg.FLOPs() / 1e9
		selected := autotune.SelectConvAlgorithm(cfg)

		if !s.skipDirect {
			b.Run(s.name+"/direct", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := kernels.ConvDirectInto(in, filters, out, cfg); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(gflop*float64(b.N)/b.Elapsed().Seconds(), "GFLOP/s")
				b.ReportMetric(boolMetric(selected == kernels.ConvAlgDirect), "selected")
			})
		}
		b.Run(s.name+"/gemm", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := kernels.ConvIm2colGemmInto(in, packed, out, cfg, scratch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(gflop*float64(b.N)/b.Elapsed().Seconds(), "GFLOP/s")
			b.ReportMetric(boolMetric(selected == kernels.ConvAlgGemm), "selected")
		})
		b.Run(s.name+"/fft", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := kernels.ConvFFTInto(in, filters, out, cfg, fftScratch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(gflop*float64(b.N)/b.Elapsed().Seconds(), "GFLOP/s")
			b.ReportMetric(boolMetric(selected == kernels.ConvAlgFFT), "selected")
		})
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// pow computes the geometric-mean root used by several benchmarks.
func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, y)
}
